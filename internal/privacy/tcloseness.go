package privacy

import (
	"fmt"
	"math"
	"sort"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
)

// TCloseness computes the t of the partition under Li et al.'s t-closeness:
// the maximum earth mover's distance between any class's sensitive-value
// distribution and the global distribution. The ground distance is chosen
// by ordered: false uses the equal-distance metric for nominal attributes
// (EMD = total variation distance), true uses the ordered-distance metric
// for numeric or ordinal attributes.
func TCloseness(p *eqclass.Partition, sensitive []dataset.Value, ordered bool) (float64, error) {
	if len(sensitive) != p.N() {
		return 0, fmt.Errorf("privacy: sensitive column has %d values for %d rows", len(sensitive), p.N())
	}
	if p.N() == 0 {
		return 0, fmt.Errorf("privacy: t-closeness of empty partition")
	}
	// Establish the global distribution over a canonical value order.
	keys, global := distribution(sensitive, nil, ordered)
	worst := 0.0
	for _, rows := range p.Classes {
		_, local := distribution(sensitive, rows, ordered)
		// Align local to the global key order (distribution guarantees
		// identical key sets because it enumerates the global keys).
		d := emd(local, global, ordered)
		if d > worst {
			worst = d
		}
	}
	_ = keys
	return worst, nil
}

// IsTClose reports whether the partition satisfies t-closeness at threshold t.
func IsTClose(p *eqclass.Partition, sensitive []dataset.Value, t float64, ordered bool) (bool, error) {
	if t < 0 || t > 1 || math.IsNaN(t) {
		return false, fmt.Errorf("privacy: t must be in [0,1], got %v", t)
	}
	got, err := TCloseness(p, sensitive, ordered)
	if err != nil {
		return false, err
	}
	return got <= t+1e-12, nil
}

// TClosenessVector assigns every tuple the EMD between its class's
// sensitive distribution and the global one — a per-tuple t-closeness
// property. Under the paper's higher-is-better convention callers should
// negate it (lower distance means better privacy).
func TClosenessVector(p *eqclass.Partition, sensitive []dataset.Value, ordered bool) ([]float64, error) {
	if len(sensitive) != p.N() {
		return nil, fmt.Errorf("privacy: sensitive column has %d values for %d rows", len(sensitive), p.N())
	}
	perClass := make([]float64, p.NumClasses())
	_, global := distribution(sensitive, nil, ordered)
	for ci, rows := range p.Classes {
		_, local := distribution(sensitive, rows, ordered)
		perClass[ci] = emd(local, global, ordered)
	}
	out := make([]float64, p.N())
	for i := range out {
		out[i] = perClass[p.ClassOf[i]]
	}
	return out, nil
}

// TClosenessVectorFromCounts is TClosenessVector computed from precomputed
// per-class sensitive histograms (Partition.ValueCounts output). The class
// distributions come from the integer tallies — exact in float64 — so the
// result is identical to TClosenessVector's.
func TClosenessVectorFromCounts(p *eqclass.Partition, sensitive []dataset.Value, counts []map[string]int, ordered bool) ([]float64, error) {
	if len(sensitive) != p.N() {
		return nil, fmt.Errorf("privacy: sensitive column has %d values for %d rows", len(sensitive), p.N())
	}
	if err := checkCounts(p, counts); err != nil {
		return nil, err
	}
	keys, global := distribution(sensitive, nil, ordered)
	pos := make(map[string]int, len(keys))
	for i, k := range keys {
		pos[k] = i
	}
	perClass := make([]float64, p.NumClasses())
	local := make([]float64, len(keys))
	for ci, m := range counts {
		for i := range local {
			local[i] = 0
		}
		total := 0.0
		for k, cnt := range m {
			j, ok := pos[k]
			if !ok {
				return nil, fmt.Errorf("privacy: histogram key %q not in sensitive column", k)
			}
			local[j] = float64(cnt)
			total += float64(cnt)
		}
		if total > 0 {
			for i := range local {
				local[i] /= total
			}
		}
		perClass[ci] = emd(local, global, ordered)
	}
	out := make([]float64, p.N())
	for i := range out {
		out[i] = perClass[p.ClassOf[i]]
	}
	return out, nil
}

// ClassEMD returns the earth mover's distance between the sensitive-value
// distribution of the selected rows and the distribution of the whole
// column — the quantity t-closeness bounds per equivalence class. Exposed
// for algorithms (Mondrian) that must check candidate classes before a
// partition exists.
func ClassEMD(col []dataset.Value, rows []int, ordered bool) (float64, error) {
	if len(col) == 0 {
		return 0, fmt.Errorf("privacy: ClassEMD of empty column")
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("privacy: ClassEMD of empty class")
	}
	for _, r := range rows {
		if r < 0 || r >= len(col) {
			return 0, fmt.Errorf("privacy: ClassEMD row %d out of range", r)
		}
	}
	_, global := distribution(col, nil, ordered)
	_, local := distribution(col, rows, ordered)
	return emd(local, global, ordered), nil
}

// distribution tallies the sensitive values of the selected rows (all rows
// when rows is nil) into a probability vector over the canonical ordering
// of ALL values appearing in the full column, so every distribution shares
// one support. Ordered attributes sort numerically when possible, else
// lexicographically.
func distribution(col []dataset.Value, rows []int, ordered bool) ([]string, []float64) {
	// Canonical key order over the whole column.
	seen := map[string]int{}
	var keys []string
	numeric := true
	nums := map[string]float64{}
	for _, v := range col {
		k := v.Key()
		if _, ok := seen[k]; !ok {
			seen[k] = 0
			keys = append(keys, k)
			if v.Kind() == dataset.Num {
				nums[k] = v.Float()
			} else {
				numeric = false
			}
		}
	}
	if ordered && numeric {
		sort.Slice(keys, func(i, j int) bool { return nums[keys[i]] < nums[keys[j]] })
	} else {
		sort.Strings(keys)
	}
	pos := make(map[string]int, len(keys))
	for i, k := range keys {
		pos[k] = i
	}
	counts := make([]float64, len(keys))
	total := 0.0
	add := func(v dataset.Value) {
		counts[pos[v.Key()]]++
		total++
	}
	if rows == nil {
		for _, v := range col {
			add(v)
		}
	} else {
		for _, r := range rows {
			add(col[r])
		}
	}
	if total > 0 {
		for i := range counts {
			counts[i] /= total
		}
	}
	return keys, counts
}

// emd computes the earth mover's distance between two aligned
// distributions. For the equal-distance ground metric (nominal attributes)
// EMD reduces to the total variation distance ½Σ|p−q|. For the ordered
// metric it is (1/(m−1))·Σ_i |Σ_{j<=i}(p_j − q_j)| (Li et al. 2007).
func emd(p, q []float64, ordered bool) float64 {
	if len(p) != len(q) {
		return math.NaN()
	}
	if !ordered {
		s := 0.0
		for i := range p {
			s += math.Abs(p[i] - q[i])
		}
		return s / 2
	}
	m := len(p)
	if m == 1 {
		return 0
	}
	cum, s := 0.0, 0.0
	for i := 0; i < m; i++ {
		cum += p[i] - q[i]
		s += math.Abs(cum)
	}
	return s / float64(m-1)
}
