package privacy

import (
	"fmt"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
)

// PSensitivity returns the p of Truta & Vinay's p-sensitive k-anonymity:
// the minimum number of distinct sensitive values in any class. (It equals
// distinct ℓ-diversity's ℓ; the model differs in how it is enforced
// alongside a k constraint, which IsPSensitiveKAnonymous captures.)
func PSensitivity(part *eqclass.Partition, sensitive []dataset.Value) (int, error) {
	return DistinctLDiversity(part, sensitive)
}

// IsPSensitiveKAnonymous reports whether the partition is simultaneously
// k-anonymous and p-sensitive: every class has at least k members AND at
// least p distinct sensitive values.
func IsPSensitiveKAnonymous(part *eqclass.Partition, sensitive []dataset.Value, p, k int) (bool, error) {
	if p < 1 {
		return false, fmt.Errorf("privacy: p must be positive, got %d", p)
	}
	kOK, err := IsKAnonymous(part, k)
	if err != nil {
		return false, err
	}
	if !kOK {
		return false, nil
	}
	return IsDistinctLDiverse(part, sensitive, p)
}

// GuardingNode expresses an individual's personalized privacy requirement
// in the Xiao–Tao model (§2 of the paper): the adversary must not be able
// to pin the individual's sensitive value below the guard's granularity
// with probability above the individual's tolerance.
type GuardingNode struct {
	// Label is a node label in the sensitive attribute's taxonomy ("*"
	// allows everything to be revealed — no requirement).
	Label string
	// Tolerance is the maximum acceptable breach probability in [0,1].
	Tolerance float64
}

// PersonalizedBreachVector computes, per tuple, the probability that an
// adversary confined to the tuple's equivalence class draws a sensitive
// value covered by the tuple's guarding node: |{j in class : guard covers
// s_j}| / |class|. This is the simplified (uniform-adversary) form of
// Xiao–Tao's breach probability; DESIGN.md §5 records the substitution.
func PersonalizedBreachVector(part *eqclass.Partition, sensitive []dataset.Value, tax *hierarchy.Taxonomy, guards []GuardingNode) ([]float64, error) {
	if len(sensitive) != part.N() {
		return nil, fmt.Errorf("privacy: sensitive column has %d values for %d rows", len(sensitive), part.N())
	}
	if len(guards) != part.N() {
		return nil, fmt.Errorf("privacy: %d guarding nodes for %d rows", len(guards), part.N())
	}
	if tax == nil {
		return nil, fmt.Errorf("privacy: nil sensitive taxonomy")
	}
	out := make([]float64, part.N())
	for i := range out {
		g := guards[i]
		if g.Tolerance < 0 || g.Tolerance > 1 {
			return nil, fmt.Errorf("privacy: tuple %d has tolerance %v outside [0,1]", i, g.Tolerance)
		}
		rows := part.Classes[part.ClassOf[i]]
		covered := 0
		for _, r := range rows {
			v := sensitive[r]
			if v.Kind() != dataset.Str {
				return nil, fmt.Errorf("privacy: tuple %d has non-ground sensitive value %v", r, v)
			}
			if tax.CoversValue(g.Label, v.Text()) {
				covered++
			}
		}
		out[i] = float64(covered) / float64(len(rows))
	}
	return out, nil
}

// PersonalizedSatisfied reports whether every tuple's personalized breach
// probability is within its tolerance. Tuples whose guard is the taxonomy
// root ("*") are treated as having no requirement: in the Xiao–Tao model a
// root guard means the individual does not mind full disclosure.
func PersonalizedSatisfied(part *eqclass.Partition, sensitive []dataset.Value, tax *hierarchy.Taxonomy, guards []GuardingNode) (bool, []int, error) {
	probs, err := PersonalizedBreachVector(part, sensitive, tax, guards)
	if err != nil {
		return false, nil, err
	}
	var violated []int
	for i, p := range probs {
		if guards[i].Label == "*" {
			continue
		}
		if p > guards[i].Tolerance+1e-12 {
			violated = append(violated, i)
		}
	}
	return len(violated) == 0, violated, nil
}
