// Package privacy implements the privacy models surveyed by the paper —
// k-anonymity, ℓ-diversity (distinct, entropy and recursive (c,ℓ)
// variants), t-closeness, p-sensitive k-anonymity and personalized
// (guarding-node) privacy — both as boolean checks over an equivalence-class
// partition and as per-tuple property-vector sources for package core.
package privacy

import (
	"fmt"
	"math"
	"sort"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
)

// KAnonymity returns the k of the partition: the minimum equivalence class
// size (0 for an empty partition). It is the unary quality index P_k-anon
// applied at the source.
func KAnonymity(p *eqclass.Partition) int { return p.MinSize() }

// IsKAnonymous reports whether every equivalence class has at least k
// members. k must be positive.
func IsKAnonymous(p *eqclass.Partition, k int) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("privacy: k must be positive, got %d", k)
	}
	if p.N() == 0 {
		return false, nil
	}
	return p.MinSize() >= k, nil
}

// ClassSizeVector is the paper's privacy property vector for k-anonymity:
// element i is the size of tuple i's equivalence class.
func ClassSizeVector(p *eqclass.Partition) []float64 { return p.SizeVector() }

// DistinctLDiversity returns the ℓ of distinct ℓ-diversity: the minimum
// number of distinct sensitive values in any equivalence class.
func DistinctLDiversity(p *eqclass.Partition, sensitive []dataset.Value) (int, error) {
	counts, err := p.ValueCounts(sensitive)
	if err != nil {
		return 0, err
	}
	if len(counts) == 0 {
		return 0, nil
	}
	min := len(counts[0])
	for _, m := range counts[1:] {
		if len(m) < min {
			min = len(m)
		}
	}
	return min, nil
}

// IsDistinctLDiverse reports whether every class holds at least l distinct
// sensitive values.
func IsDistinctLDiverse(p *eqclass.Partition, sensitive []dataset.Value, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("privacy: l must be positive, got %d", l)
	}
	got, err := DistinctLDiversity(p, sensitive)
	if err != nil {
		return false, err
	}
	if p.N() == 0 {
		return false, nil
	}
	return got >= l, nil
}

// EntropyLDiversity returns the entropy ℓ of the partition: exp of the
// minimum class entropy of the sensitive distribution. A partition is
// entropy ℓ-diverse when the returned value is at least ℓ.
func EntropyLDiversity(p *eqclass.Partition, sensitive []dataset.Value) (float64, error) {
	counts, err := p.ValueCounts(sensitive)
	if err != nil {
		return 0, err
	}
	if len(counts) == 0 {
		return 0, fmt.Errorf("privacy: entropy ℓ-diversity of empty partition")
	}
	minL := math.Inf(1)
	for _, m := range counts {
		total := 0
		for _, c := range m {
			total += c
		}
		h := 0.0
		for _, c := range m {
			q := float64(c) / float64(total)
			h -= q * math.Log(q)
		}
		if l := math.Exp(h); l < minL {
			minL = l
		}
	}
	return minL, nil
}

// RecursiveCLDiversity reports whether the partition is recursive (c,ℓ)-
// diverse (Machanavajjhala et al.): in every class, with sensitive value
// frequencies r_1 >= r_2 >= ... >= r_m, it must hold that
// r_1 < c · (r_l + r_{l+1} + ... + r_m).
func RecursiveCLDiversity(p *eqclass.Partition, sensitive []dataset.Value, c float64, l int) (bool, error) {
	if l < 1 {
		return false, fmt.Errorf("privacy: l must be positive, got %d", l)
	}
	if c <= 0 || math.IsNaN(c) {
		return false, fmt.Errorf("privacy: c must be positive, got %v", c)
	}
	counts, err := p.ValueCounts(sensitive)
	if err != nil {
		return false, err
	}
	if len(counts) == 0 {
		return false, nil
	}
	for _, m := range counts {
		freqs := make([]int, 0, len(m))
		for _, cnt := range m {
			freqs = append(freqs, cnt)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		if l > len(freqs) {
			// Fewer than l distinct values: the tail sum is empty, the
			// condition r_1 < c·0 can never hold.
			return false, nil
		}
		tail := 0
		for _, f := range freqs[l-1:] {
			tail += f
		}
		if float64(freqs[0]) >= c*float64(tail) {
			return false, nil
		}
	}
	return true, nil
}

// SensitiveCountVector is the paper's §3 ℓ-diversity property vector:
// element i counts tuple i's sensitive value within its class.
func SensitiveCountVector(p *eqclass.Partition, sensitive []dataset.Value) ([]float64, error) {
	return p.SensitiveCountVector(sensitive)
}

// DistinctCountVector assigns every tuple the number of distinct sensitive
// values in its class — a per-tuple view of distinct ℓ-diversity.
func DistinctCountVector(p *eqclass.Partition, sensitive []dataset.Value) ([]float64, error) {
	counts, err := p.ValueCounts(sensitive)
	if err != nil {
		return nil, err
	}
	return DistinctCountVectorFromCounts(p, counts)
}

// checkCounts validates precomputed per-class histograms against the
// partition shape, shared by the FromCounts vector sources.
func checkCounts(p *eqclass.Partition, counts []map[string]int) error {
	if len(counts) != p.NumClasses() {
		return fmt.Errorf("privacy: %d class histograms for %d classes", len(counts), p.NumClasses())
	}
	return nil
}

// SensitiveCountVectorFromCounts is SensitiveCountVector computed from
// precomputed per-class sensitive histograms (Partition.ValueCounts
// output), letting callers tally the column once and share it across
// several vector sources.
func SensitiveCountVectorFromCounts(p *eqclass.Partition, sensitive []dataset.Value, counts []map[string]int) ([]float64, error) {
	if len(sensitive) != p.N() {
		return nil, fmt.Errorf("privacy: sensitive column has %d values for %d rows", len(sensitive), p.N())
	}
	if err := checkCounts(p, counts); err != nil {
		return nil, err
	}
	out := make([]float64, p.N())
	for i := range out {
		out[i] = float64(counts[p.ClassOf[i]][sensitive[i].Key()])
	}
	return out, nil
}

// DistinctCountVectorFromCounts is DistinctCountVector computed from
// precomputed per-class histograms.
func DistinctCountVectorFromCounts(p *eqclass.Partition, counts []map[string]int) ([]float64, error) {
	if err := checkCounts(p, counts); err != nil {
		return nil, err
	}
	out := make([]float64, p.N())
	for i := range out {
		out[i] = float64(len(counts[p.ClassOf[i]]))
	}
	return out, nil
}

// BreachProbabilityVectorFromCounts is BreachProbabilityVector computed
// from precomputed per-class histograms.
func BreachProbabilityVectorFromCounts(p *eqclass.Partition, sensitive []dataset.Value, counts []map[string]int) ([]float64, error) {
	counted, err := SensitiveCountVectorFromCounts(p, sensitive, counts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.N())
	for i := range out {
		out[i] = counted[i] / float64(p.Size(i))
	}
	return out, nil
}

// BreachProbabilityVector assigns every tuple the adversary's linking
// probability under the paper's §1 reading: the frequency of the tuple's
// own sensitive value within its class divided by the class size. Tuples
// {2,3,5,6,7,9,10} of T3b get 1/7-style low probabilities only when the
// sensitive values are distinct; with the class-size property the paper
// quotes 1/|class| as the re-identification bound, which this vector
// reduces to when all sensitive values in a class are unique.
func BreachProbabilityVector(p *eqclass.Partition, sensitive []dataset.Value) ([]float64, error) {
	counts, err := p.SensitiveCountVector(sensitive)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.N())
	for i := range out {
		out[i] = counts[i] / float64(p.Size(i))
	}
	return out, nil
}

// ReidentificationVector is the per-tuple re-identification probability
// 1/|class| — the "probability of privacy breach" the paper's §1 uses
// (1/3 for T3a's tuples, 1/7 for most of T3b's).
func ReidentificationVector(p *eqclass.Partition) []float64 {
	out := make([]float64, p.N())
	for i := range out {
		out[i] = 1 / float64(p.Size(i))
	}
	return out
}
