package privacy

import (
	"math"
	"math/rand"
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
)

func TestTClosenessNominal(t *testing.T) {
	// Global: a,a,b,b -> (0.5, 0.5). Class {0,1} = (1,0): TV distance 0.5.
	p, _ := eqclass.FromGroups(4, [][]int{{0, 1}, {2, 3}})
	col := []dataset.Value{
		dataset.StrVal("a"), dataset.StrVal("a"),
		dataset.StrVal("b"), dataset.StrVal("b"),
	}
	got, err := TCloseness(p, col, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("t = %v, want 0.5", got)
	}
	ok, err := IsTClose(p, col, 0.5, false)
	if err != nil || !ok {
		t.Errorf("IsTClose(0.5) = %v, %v", ok, err)
	}
	ok, _ = IsTClose(p, col, 0.4, false)
	if ok {
		t.Error("0.4-closeness should fail")
	}
}

func TestTClosenessPerfectPartition(t *testing.T) {
	// One class = whole table: t = 0.
	p, _ := eqclass.FromGroups(3, [][]int{{0, 1, 2}})
	col := []dataset.Value{dataset.StrVal("a"), dataset.StrVal("b"), dataset.StrVal("c")}
	got, err := TCloseness(p, col, false)
	if err != nil || got != 0 {
		t.Errorf("t = %v, %v; want 0", got, err)
	}
}

func TestTClosenessOrderedNumeric(t *testing.T) {
	// Li et al.'s ordered EMD: values 1..4 uniformly global; class {0,1}
	// holds {1,2}. p-q = (.5-.25, .5-.25, -.25, -.25) cumulative:
	// .25, .5, .25, 0 -> sum 1.0 / (m-1)=3 -> 1/3.
	p, _ := eqclass.FromGroups(4, [][]int{{0, 1}, {2, 3}})
	col := []dataset.Value{
		dataset.NumVal(1), dataset.NumVal(2), dataset.NumVal(3), dataset.NumVal(4),
	}
	got, err := TCloseness(p, col, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ordered t = %v, want 1/3", got)
	}
	// The nominal metric sees the same class as TV distance 0.5.
	gotNom, _ := TCloseness(p, col, false)
	if math.Abs(gotNom-0.5) > 1e-12 {
		t.Errorf("nominal t = %v, want 0.5", gotNom)
	}
}

func TestTClosenessErrors(t *testing.T) {
	p, _ := eqclass.FromGroups(2, [][]int{{0, 1}})
	col := []dataset.Value{dataset.StrVal("a"), dataset.StrVal("b")}
	if _, err := TCloseness(p, col[:1], false); err == nil {
		t.Error("short column should fail")
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if _, err := TCloseness(empty, nil, false); err == nil {
		t.Error("empty partition should fail")
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := IsTClose(p, col, bad, false); err == nil {
			t.Errorf("t=%v should fail", bad)
		}
	}
}

func TestTClosenessVector(t *testing.T) {
	p, _ := eqclass.FromGroups(4, [][]int{{0, 1}, {2, 3}})
	col := []dataset.Value{
		dataset.StrVal("a"), dataset.StrVal("a"),
		dataset.StrVal("a"), dataset.StrVal("b"),
	}
	vec, err := TClosenessVector(p, col, false)
	if err != nil {
		t.Fatal(err)
	}
	// Global (a:0.75, b:0.25). Class {0,1}=(1,0): TV=0.25. Class {2,3}=(0.5,0.5): TV=0.25.
	for i, want := range []float64{0.25, 0.25, 0.25, 0.25} {
		if math.Abs(vec[i]-want) > 1e-12 {
			t.Fatalf("t-closeness vector = %v", vec)
		}
	}
	if _, err := TClosenessVector(p, col[:2], false); err == nil {
		t.Error("short column should fail")
	}
}

// EMD properties: in [0,1], zero iff identical distribution, symmetric.
func TestTClosenessBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	letters := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(12) + 2
		col := make([]dataset.Value, n)
		for i := range col {
			col[i] = dataset.StrVal(letters[rng.Intn(len(letters))])
		}
		groups := [][]int{}
		perm := rng.Perm(n)
		for i := 0; i < n; {
			sz := rng.Intn(3) + 1
			if i+sz > n {
				sz = n - i
			}
			groups = append(groups, perm[i:i+sz])
			i += sz
		}
		p, err := eqclass.FromGroups(n, groups)
		if err != nil {
			t.Fatal(err)
		}
		for _, ordered := range []bool{false, true} {
			got, err := TCloseness(p, col, ordered)
			if err != nil {
				t.Fatal(err)
			}
			if got < 0 || got > 1+1e-12 {
				t.Fatalf("t out of range: %v", got)
			}
		}
		// Single whole-table class is always 0.
		whole, _ := eqclass.FromGroups(n, [][]int{allRows(n)})
		got, _ := TCloseness(whole, col, false)
		if got != 0 {
			t.Fatalf("whole-table t = %v", got)
		}
	}
}

func allRows(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func TestPSensitive(t *testing.T) {
	col := sensitiveT1()
	p, err := PSensitivity(partT3a(t), col)
	if err != nil || p != 2 {
		t.Errorf("p(T3a) = %d, %v; want 2", p, err)
	}
	ok, err := IsPSensitiveKAnonymous(partT3a(t), col, 2, 3)
	if err != nil || !ok {
		t.Errorf("T3a should be 2-sensitive 3-anonymous: %v, %v", ok, err)
	}
	ok, _ = IsPSensitiveKAnonymous(partT3a(t), col, 3, 3)
	if ok {
		t.Error("T3a is not 3-sensitive")
	}
	ok, _ = IsPSensitiveKAnonymous(partT3a(t), col, 2, 5)
	if ok {
		t.Error("T3a is not 5-anonymous")
	}
	if _, err := IsPSensitiveKAnonymous(partT3a(t), col, 0, 3); err == nil {
		t.Error("p=0 should fail")
	}
	// T4 suppresses the sensitive column in the published table, but the
	// ground values yield p = 3: class {0,2,3,7} has CF-Spouse x2, Never
	// Married, Spouse Present (3 distinct); class {1,4,5,6,8,9} has
	// Separated x3, Divorced x2, Spouse Absent (3 distinct).
	p4, _ := PSensitivity(partT4(t), col)
	if p4 != 3 {
		t.Errorf("p(T4) = %d, want 3", p4)
	}
}

func maritalTax(t *testing.T) *hierarchy.Taxonomy {
	t.Helper()
	return hierarchy.MustTaxonomy("MaritalStatus", hierarchy.N("*",
		hierarchy.N("Married", hierarchy.N("CF-Spouse"), hierarchy.N("Spouse Present")),
		hierarchy.N("Not Married", hierarchy.N("Separated"), hierarchy.N("Never Married"), hierarchy.N("Divorced"), hierarchy.N("Spouse Absent")),
	))
}

func TestPersonalizedBreachVector(t *testing.T) {
	tax := maritalTax(t)
	col := sensitiveT1()
	part := partT3a(t)
	guards := make([]GuardingNode, 10)
	for i := range guards {
		guards[i] = GuardingNode{Label: "*", Tolerance: 1}
	}
	// Tuple 0 guards "Married": class {0,3,7} sensitive values CF-Spouse,
	// CF-Spouse, Spouse Present are ALL under Married -> breach prob 1.
	guards[0] = GuardingNode{Label: "Married", Tolerance: 0.5}
	probs, err := PersonalizedBreachVector(part, col, tax, guards)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 1 {
		t.Errorf("breach[0] = %v, want 1", probs[0])
	}
	ok, violated, err := PersonalizedSatisfied(part, col, tax, guards)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(violated) != 1 || violated[0] != 0 {
		t.Errorf("expected tuple 0 violation, got ok=%v violated=%v", ok, violated)
	}
	// Guarding the leaf value: tuple 2 (Never Married, unique in class
	// {1,2,8}) has breach prob 1/3 <= 0.5 tolerance.
	guards[0] = GuardingNode{Label: "*", Tolerance: 1}
	guards[2] = GuardingNode{Label: "Never Married", Tolerance: 0.5}
	ok, violated, err = PersonalizedSatisfied(part, col, tax, guards)
	if err != nil || !ok {
		t.Errorf("leaf guard should be satisfied: ok=%v violated=%v err=%v", ok, violated, err)
	}
	// Bias point (§2): the same guard for tuple 5 in T3b's big class gives
	// a different probability — personalized privacy is biased too.
	probs3b, err := PersonalizedBreachVector(partT3b(t), col, tax, guards)
	if err != nil {
		t.Fatal(err)
	}
	if probs3b[2] >= probs[2] {
		t.Errorf("T3b's larger class should lower tuple 2's breach probability: %v vs %v", probs3b[2], probs[2])
	}
}

func TestPersonalizedErrors(t *testing.T) {
	tax := maritalTax(t)
	col := sensitiveT1()
	part := partT3a(t)
	guards := make([]GuardingNode, 10)
	for i := range guards {
		guards[i] = GuardingNode{Label: "*", Tolerance: 1}
	}
	if _, err := PersonalizedBreachVector(part, col[:5], tax, guards); err == nil {
		t.Error("short column should fail")
	}
	if _, err := PersonalizedBreachVector(part, col, tax, guards[:5]); err == nil {
		t.Error("short guards should fail")
	}
	if _, err := PersonalizedBreachVector(part, col, nil, guards); err == nil {
		t.Error("nil taxonomy should fail")
	}
	bad := append([]GuardingNode(nil), guards...)
	bad[3] = GuardingNode{Label: "*", Tolerance: 2}
	if _, err := PersonalizedBreachVector(part, col, tax, bad); err == nil {
		t.Error("tolerance > 1 should fail")
	}
	gen := append([]dataset.Value(nil), col...)
	gen[0] = dataset.SetVal("Married")
	if _, err := PersonalizedBreachVector(part, gen, tax, guards); err == nil {
		t.Error("generalized sensitive value should fail")
	}
}
