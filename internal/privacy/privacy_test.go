package privacy

import (
	"math"
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
)

// Paper fixtures in T1's row order (0-based).
func sensitiveT1() []dataset.Value {
	names := []string{
		"CF-Spouse", "Separated", "Never Married", "CF-Spouse", "Divorced",
		"Spouse Absent", "Divorced", "Spouse Present", "Separated", "Separated",
	}
	col := make([]dataset.Value, len(names))
	for i, n := range names {
		col[i] = dataset.StrVal(n)
	}
	return col
}

func partT3a(t *testing.T) *eqclass.Partition {
	t.Helper()
	p, err := eqclass.FromGroups(10, [][]int{{0, 3, 7}, {1, 2, 8}, {4, 5, 6, 9}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func partT3b(t *testing.T) *eqclass.Partition {
	t.Helper()
	p, err := eqclass.FromGroups(10, [][]int{{0, 3, 7}, {1, 2, 4, 5, 6, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func partT4(t *testing.T) *eqclass.Partition {
	t.Helper()
	p, err := eqclass.FromGroups(10, [][]int{{0, 2, 3, 7}, {1, 4, 5, 6, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKAnonymityPaperTables(t *testing.T) {
	if k := KAnonymity(partT3a(t)); k != 3 {
		t.Errorf("k(T3a) = %d, want 3", k)
	}
	if k := KAnonymity(partT3b(t)); k != 3 {
		t.Errorf("k(T3b) = %d, want 3", k)
	}
	if k := KAnonymity(partT4(t)); k != 4 {
		t.Errorf("k(T4) = %d, want 4", k)
	}
	for _, tc := range []struct {
		p    *eqclass.Partition
		k    int
		want bool
	}{
		{partT3a(t), 3, true},
		{partT3a(t), 4, false},
		{partT4(t), 4, true},
	} {
		got, err := IsKAnonymous(tc.p, tc.k)
		if err != nil || got != tc.want {
			t.Errorf("IsKAnonymous(k=%d) = %v, %v; want %v", tc.k, got, err, tc.want)
		}
	}
	if _, err := IsKAnonymous(partT3a(t), 0); err == nil {
		t.Error("k=0 should fail")
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if ok, _ := IsKAnonymous(empty, 2); ok {
		t.Error("empty partition is not k-anonymous")
	}
}

func TestClassSizeVectorFigure1(t *testing.T) {
	want := map[string][]float64{
		"T3a": {3, 3, 3, 3, 4, 4, 4, 3, 3, 4},
		"T3b": {3, 7, 7, 3, 7, 7, 7, 3, 7, 7},
		"T4":  {4, 6, 4, 4, 6, 6, 6, 4, 6, 6},
	}
	parts := map[string]*eqclass.Partition{"T3a": partT3a(t), "T3b": partT3b(t), "T4": partT4(t)}
	for name, w := range want {
		got := ClassSizeVector(parts[name])
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s class-size vector = %v, want %v (Figure 1)", name, got, w)
			}
		}
	}
}

func TestDistinctLDiversity(t *testing.T) {
	col := sensitiveT1()
	l, err := DistinctLDiversity(partT3a(t), col)
	if err != nil || l != 2 {
		t.Errorf("distinct ℓ(T3a) = %d, %v; want 2", l, err)
	}
	ok, err := IsDistinctLDiverse(partT3a(t), col, 2)
	if err != nil || !ok {
		t.Errorf("T3a should be 2-diverse: %v, %v", ok, err)
	}
	ok, _ = IsDistinctLDiverse(partT3a(t), col, 3)
	if ok {
		t.Error("T3a is not 3-diverse")
	}
	if _, err := IsDistinctLDiverse(partT3a(t), col, 0); err == nil {
		t.Error("l=0 should fail")
	}
	if _, err := DistinctLDiversity(partT3a(t), col[:3]); err == nil {
		t.Error("short column should fail")
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if l, err := DistinctLDiversity(empty, nil); err != nil || l != 0 {
		t.Errorf("empty distinct ℓ = %d, %v", l, err)
	}
	if ok, _ := IsDistinctLDiverse(empty, nil, 1); ok {
		t.Error("empty partition is not diverse")
	}
}

func TestSensitiveCountVectorPaper(t *testing.T) {
	got, err := SensitiveCountVector(partT3a(t), sensitiveT1())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 1, 2, 2, 1, 2, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sensitive-count vector = %v, want %v (paper §3)", got, want)
		}
	}
}

func TestEntropyLDiversity(t *testing.T) {
	// A class with uniform sensitive values over 2 has entropy ℓ = 2.
	p, _ := eqclass.FromGroups(4, [][]int{{0, 1}, {2, 3}})
	col := []dataset.Value{
		dataset.StrVal("a"), dataset.StrVal("b"),
		dataset.StrVal("c"), dataset.StrVal("c"),
	}
	l, err := EntropyLDiversity(p, col)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-9 {
		t.Errorf("entropy ℓ = %v, want 1 (degenerate class {c,c})", l)
	}
	p2, _ := eqclass.FromGroups(4, [][]int{{0, 1}, {2, 3}})
	col2 := []dataset.Value{
		dataset.StrVal("a"), dataset.StrVal("b"),
		dataset.StrVal("c"), dataset.StrVal("d"),
	}
	l2, _ := EntropyLDiversity(p2, col2)
	if math.Abs(l2-2) > 1e-9 {
		t.Errorf("entropy ℓ = %v, want 2", l2)
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if _, err := EntropyLDiversity(empty, nil); err == nil {
		t.Error("empty partition should fail")
	}
	if _, err := EntropyLDiversity(p, col[:1]); err == nil {
		t.Error("short column should fail")
	}
}

func TestRecursiveCLDiversity(t *testing.T) {
	// Frequencies 3,2,1 in one class: r1=3, l=2 tail = 2+1 = 3.
	// c=1: 3 < 3 false. c=1.5: 3 < 4.5 true.
	p, _ := eqclass.FromGroups(6, [][]int{{0, 1, 2, 3, 4, 5}})
	col := []dataset.Value{
		dataset.StrVal("a"), dataset.StrVal("a"), dataset.StrVal("a"),
		dataset.StrVal("b"), dataset.StrVal("b"), dataset.StrVal("c"),
	}
	ok, err := RecursiveCLDiversity(p, col, 1.0, 2)
	if err != nil || ok {
		t.Errorf("(1,2)-diversity = %v, %v; want false", ok, err)
	}
	ok, err = RecursiveCLDiversity(p, col, 1.5, 2)
	if err != nil || !ok {
		t.Errorf("(1.5,2)-diversity = %v, %v; want true", ok, err)
	}
	// l beyond distinct count fails.
	ok, err = RecursiveCLDiversity(p, col, 10, 4)
	if err != nil || ok {
		t.Errorf("(10,4)-diversity = %v, %v; want false", ok, err)
	}
	if _, err := RecursiveCLDiversity(p, col, 1, 0); err == nil {
		t.Error("l=0 should fail")
	}
	if _, err := RecursiveCLDiversity(p, col, -1, 2); err == nil {
		t.Error("negative c should fail")
	}
	if _, err := RecursiveCLDiversity(p, col, math.NaN(), 2); err == nil {
		t.Error("NaN c should fail")
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if ok, err := RecursiveCLDiversity(empty, nil, 1, 1); err != nil || ok {
		t.Errorf("empty partition: %v, %v", ok, err)
	}
}

func TestDistinctCountVector(t *testing.T) {
	got, err := DistinctCountVector(partT3a(t), sensitiveT1())
	if err != nil {
		t.Fatal(err)
	}
	// Classes: {0,3,7}: 2 distinct; {1,2,8}: 2; {4,5,6,9}: 3.
	want := []float64{2, 2, 2, 2, 3, 3, 3, 2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct-count vector = %v, want %v", got, want)
		}
	}
	if _, err := DistinctCountVector(partT3a(t), nil); err == nil {
		t.Error("nil column should fail")
	}
}

func TestReidentificationVectorPaperSection1(t *testing.T) {
	// §1: in T3b tuples {2,3,5,6,7,9,10} have breach probability 1/7, the
	// rest 1/3.
	got := ReidentificationVector(partT3b(t))
	for i, want := range []float64{1.0 / 3, 1.0 / 7, 1.0 / 7, 1.0 / 3, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 3, 1.0 / 7, 1.0 / 7} {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("reidentification vector = %v", got)
		}
	}
	// §1: every tuple of a 3-anonymous table has at most 1/3 breach prob.
	for _, v := range ReidentificationVector(partT3a(t)) {
		if v > 1.0/3+1e-12 {
			t.Errorf("T3a breach probability %v exceeds 1/3", v)
		}
	}
}

func TestBreachProbabilityVector(t *testing.T) {
	got, err := BreachProbabilityVector(partT3a(t), sensitiveT1())
	if err != nil {
		t.Fatal(err)
	}
	// Tuple 0 (CF-Spouse in class {0,3,7} with counts CF-Spouse:2): 2/3.
	if math.Abs(got[0]-2.0/3) > 1e-12 {
		t.Errorf("breach[0] = %v, want 2/3", got[0])
	}
	// Tuple 7 (Spouse Present, count 1 in class of 3): 1/3.
	if math.Abs(got[7]-1.0/3) > 1e-12 {
		t.Errorf("breach[7] = %v, want 1/3", got[7])
	}
	if _, err := BreachProbabilityVector(partT3a(t), nil); err == nil {
		t.Error("nil column should fail")
	}
}
