package dataset

import (
	"strings"
	"testing"
)

func demoSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "ZipCode", Kind: Categorical, Role: QuasiIdentifier},
		Attribute{Name: "Age", Kind: Numeric, Role: QuasiIdentifier},
		Attribute{Name: "MaritalStatus", Kind: Categorical, Role: Sensitive},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(
		Attribute{Name: "A"}, Attribute{Name: "A"},
	)
	if err == nil {
		t.Fatal("expected duplicate-name error")
	}
	_, err = NewSchema(Attribute{Name: ""})
	if err == nil {
		t.Fatal("expected empty-name error")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema(Attribute{Name: "A"}, Attribute{Name: "A"})
}

func TestSchemaLookups(t *testing.T) {
	s := demoSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i := s.Index("Age"); i != 1 {
		t.Fatalf("Index(Age) = %d", i)
	}
	if i := s.Index("Nope"); i != -1 {
		t.Fatalf("Index(Nope) = %d", i)
	}
	a, ok := s.Attr("MaritalStatus")
	if !ok || a.Role != Sensitive {
		t.Fatalf("Attr(MaritalStatus) = %+v, %v", a, ok)
	}
	if _, ok := s.Attr("Nope"); ok {
		t.Fatal("Attr(Nope) should not exist")
	}
	if qi := s.QuasiIdentifiers(); len(qi) != 2 || qi[0] != 0 || qi[1] != 1 {
		t.Fatalf("QuasiIdentifiers = %v", qi)
	}
	if si := s.SensitiveIndex(); si != 2 {
		t.Fatalf("SensitiveIndex = %d", si)
	}
	noSens := MustSchema(Attribute{Name: "X"})
	if si := noSens.SensitiveIndex(); si != -1 {
		t.Fatalf("SensitiveIndex on schema without sensitive = %d", si)
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tab := NewTable(demoSchema(t))
	tab.MustAppend(StrVal("13053"), NumVal(28), StrVal("CF-Spouse"))
	tab.MustAppend(StrVal("13268"), NumVal(41), StrVal("Separated"))
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if got := tab.At(0, 1); !got.Equal(NumVal(28)) {
		t.Fatalf("At(0,1) = %v", got)
	}
	if err := tab.Append([]Value{StrVal("x")}); err == nil {
		t.Fatal("expected width error")
	}
	col, err := tab.ColumnByName("Age")
	if err != nil || len(col) != 2 || !col[1].Equal(NumVal(41)) {
		t.Fatalf("ColumnByName(Age) = %v, %v", col, err)
	}
	if _, err := tab.ColumnByName("Nope"); err == nil {
		t.Fatal("expected missing-column error")
	}
}

func TestMustAppendPanics(t *testing.T) {
	tab := NewTable(demoSchema(t))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.MustAppend(StrVal("only-one"))
}

func TestTableCloneIsDeep(t *testing.T) {
	tab := NewTable(demoSchema(t))
	tab.MustAppend(StrVal("13053"), NumVal(28), StrVal("CF-Spouse"))
	cp := tab.Clone()
	cp.Rows[0][1] = NumVal(99)
	cp.Schema.Attrs[0].Name = "Changed"
	if tab.At(0, 1).Float() != 28 {
		t.Fatal("clone shares row storage")
	}
	if tab.Schema.Attrs[0].Name != "ZipCode" {
		t.Fatal("clone shares schema storage")
	}
}

func TestDistinctCount(t *testing.T) {
	tab := NewTable(demoSchema(t))
	tab.MustAppend(StrVal("13053"), NumVal(28), StrVal("CF-Spouse"))
	tab.MustAppend(StrVal("13053"), NumVal(41), StrVal("Separated"))
	tab.MustAppend(StrVal("13268"), NumVal(41), StrVal("Separated"))
	if got := tab.DistinctCount(0); got != 2 {
		t.Fatalf("DistinctCount(zip) = %d", got)
	}
	if got := tab.DistinctCount(1); got != 2 {
		t.Fatalf("DistinctCount(age) = %d", got)
	}
}

func TestNumericRange(t *testing.T) {
	tab := NewTable(demoSchema(t))
	tab.MustAppend(StrVal("a"), NumVal(26), StrVal("x"))
	tab.MustAppend(StrVal("b"), NumVal(55), StrVal("y"))
	tab.MustAppend(StrVal("c"), IntervalVal(20, 60), StrVal("z"))
	lo, hi, ok := tab.NumericRange(1)
	if !ok || lo != 20 || hi != 60 {
		t.Fatalf("NumericRange = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := tab.NumericRange(0); ok {
		t.Fatal("string column should have no numeric range")
	}
}

func TestTableFormat(t *testing.T) {
	tab := NewTable(demoSchema(t))
	tab.MustAppend(PrefixVal("1305", 1), IntervalVal(25, 35), SetVal("Married"))
	out := tab.Format(true)
	for _, want := range []string{"ZipCode", "1305*", "(25,35]", "Married", "1  "} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	noIdx := tab.Format(false)
	if strings.Contains(strings.SplitN(noIdx, "\n", 2)[0], "1  1305") {
		t.Error("Format(false) should not print indices")
	}
}

func TestRoleAndKindStrings(t *testing.T) {
	if Insensitive.String() != "insensitive" || QuasiIdentifier.String() != "quasi-identifier" || Sensitive.String() != "sensitive" {
		t.Error("Role.String mismatch")
	}
	if !strings.Contains(Role(9).String(), "9") {
		t.Error("unknown role should include code")
	}
	if Categorical.String() != "categorical" || Numeric.String() != "numeric" {
		t.Error("AttrKind.String mismatch")
	}
}
