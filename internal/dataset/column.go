package dataset

import (
	"fmt"
	"sync"
)

// Column is a dictionary-encoded column vector: the typed columnar backing
// behind Columnar tables. Every distinct cell value (by Value.Key) is
// stored once in the dictionary, in first-appearance order, and each row
// holds only a compact uint32 code. This single encoding covers every
// ValueKind uniformly — exact numerics and strings as well as the
// generalized Interval/Prefix/Set/Star/Missing forms — while keeping the
// hot loops (equivalence-class grouping, fragment precompute, histogram
// tallies) on integer vectors instead of tagged-union cells.
//
// Numeric columns additionally carry a dictionary-aligned float64 payload,
// so full-column numeric scans (ranges, sorts, the permutation-model
// measures queued on the roadmap) run on flat float data.
//
// Concurrency contract: a Column has a SINGLE writer while it is being
// built (Append/Grow, one goroutine) and becomes safe for any number of
// concurrent readers once building stops. The lazily materialized views
// (Values, Float64View, Int64View) are internally synchronized and may be
// requested concurrently by readers, but never while a writer is still
// appending.
type Column struct {
	codes  []uint32
	dict   []Value
	keys   []string // dict-aligned canonical Value.Key strings
	index  map[string]uint32
	nums   []float64 // dict-aligned float payload; meaningful iff allNum
	allNum bool

	mu     sync.Mutex
	values []Value        // lazily materialized row-aligned view; treat as read-only
	f64    *Float64Column // lazily materialized typed view, iff IsNumeric
	i64    *Int64Column   // lazily materialized typed view, iff integral
}

// NewColumn returns an empty dictionary-encoded column.
func NewColumn() *Column {
	return &Column{index: make(map[string]uint32), allNum: true}
}

// Append adds one cell and returns its dictionary code.
func (c *Column) Append(v Value) uint32 {
	k := v.Key()
	code, ok := c.index[k]
	if !ok {
		code = uint32(len(c.dict))
		c.index[k] = code
		c.dict = append(c.dict, v)
		c.keys = append(c.keys, k)
		if v.Kind() == Num {
			c.nums = append(c.nums, v.Float())
		} else {
			c.nums = append(c.nums, 0)
			c.allNum = false
		}
	}
	c.codes = append(c.codes, code)
	return code
}

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.codes) }

// Card returns the dictionary cardinality: the number of distinct values.
func (c *Column) Card() int { return len(c.dict) }

// Codes returns the row-aligned dictionary codes. The slice is shared;
// treat it as read-only.
func (c *Column) Codes() []uint32 { return c.codes }

// Code returns row i's dictionary code.
func (c *Column) Code(i int) uint32 { return c.codes[i] }

// Dict returns the dictionary values in code order. The slice is shared;
// treat it as read-only.
func (c *Column) Dict() []Value { return c.dict }

// DictKeys returns the canonical Value.Key of each dictionary entry, in
// code order. The slice is shared; treat it as read-only.
func (c *Column) DictKeys() []string { return c.keys }

// DictValue returns the dictionary value for a code.
func (c *Column) DictValue(code uint32) Value { return c.dict[code] }

// Value returns row i's cell value.
func (c *Column) Value(i int) Value { return c.dict[c.codes[i]] }

// IsNumeric reports whether every dictionary entry is an exact Num value,
// enabling the flat float64 fast path.
func (c *Column) IsNumeric() bool { return c.allNum && len(c.dict) > 0 }

// NumericDict returns the dictionary-aligned float64 payload, valid only
// when IsNumeric: row i's number is NumericDict()[Code(i)].
func (c *Column) NumericDict() []float64 { return c.nums }

// Floats materializes the column as a flat []float64, ok=false when the
// column is not purely numeric.
func (c *Column) Floats() ([]float64, bool) {
	if !c.IsNumeric() {
		return nil, false
	}
	out := make([]float64, len(c.codes))
	for i, code := range c.codes {
		out[i] = c.nums[code]
	}
	return out, true
}

// Grow reserves capacity for n more rows in the code vector, so bulk
// ingest paths with a known chunk size avoid repeated slice regrowth.
// Single-writer, like Append.
func (c *Column) Grow(n int) {
	if n <= cap(c.codes)-len(c.codes) {
		return
	}
	need := len(c.codes) + n
	newcap := cap(c.codes) + cap(c.codes)/2
	if newcap < need {
		newcap = need
	}
	codes := make([]uint32, len(c.codes), newcap)
	copy(codes, c.codes)
	c.codes = codes
}

// Float64View returns the column as a typed Float64Column — the flat
// non-dictionary numeric fast path — materialized at most once and cached.
// ok is false when the column is not purely numeric. The typed column
// shares no mutable state with the dictionary view; treat it as read-only.
func (c *Column) Float64View() (*Float64Column, bool) {
	if !c.IsNumeric() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f64 == nil || c.f64.Len() != len(c.codes) {
		vals := make([]float64, len(c.codes))
		for i, code := range c.codes {
			vals[i] = c.nums[code]
		}
		c.f64 = Float64ColumnOf(vals)
	}
	return c.f64, true
}

// Int64View returns the column as a typed Int64Column, cached like
// Float64View; ok is false unless every value is an integral float64
// exactly representable as int64.
func (c *Column) Int64View() (*Int64Column, bool) {
	if !c.IsNumeric() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.i64 != nil && c.i64.Len() == len(c.codes) {
		return c.i64, true
	}
	const maxExact = 1 << 53
	for _, f := range c.nums {
		if f != float64(int64(f)) || f >= maxExact || f <= -maxExact {
			return nil, false
		}
	}
	vals := make([]int64, len(c.codes))
	for i, code := range c.codes {
		vals[i] = int64(c.nums[code])
	}
	c.i64 = Int64ColumnOf(vals)
	return c.i64, true
}

// Values returns a row-aligned []Value view of the column, materialized at
// most once and cached. The slice is shared across callers; treat it as
// read-only.
func (c *Column) Values() []Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.values) != len(c.codes) {
		vals := make([]Value, len(c.codes))
		for i, code := range c.codes {
			vals[i] = c.dict[code]
		}
		c.values = vals
	}
	return c.values
}

// Columnar is the column-oriented microdata table: a schema plus one
// dictionary-encoded Column per attribute. It is the substrate behind
// streaming CSV ingest and the vectorized hot paths; Table offers the
// row-oriented compatibility view over the same data (Table.Columnar /
// Columnar.Table convert between the two, sharing the columns).
//
// Build single-goroutine (AppendRow), then read concurrently.
type Columnar struct {
	schema *Schema
	cols   []*Column
	rows   int
}

// NewColumnar returns an empty columnar table over the schema.
func NewColumnar(schema *Schema) *Columnar {
	cols := make([]*Column, schema.Len())
	for j := range cols {
		cols[j] = NewColumn()
	}
	return &Columnar{schema: schema, cols: cols}
}

// Schema returns the table schema.
func (c *Columnar) Schema() *Schema { return c.schema }

// Len returns the number of rows.
func (c *Columnar) Len() int { return c.rows }

// Col returns column j.
func (c *Columnar) Col(j int) *Column { return c.cols[j] }

// ColByName returns the named column.
func (c *Columnar) ColByName(name string) (*Column, error) {
	j := c.schema.Index(name)
	if j < 0 {
		return nil, fmt.Errorf("dataset: no attribute %q", name)
	}
	return c.cols[j], nil
}

// At returns the cell at row i, column j.
func (c *Columnar) At(i, j int) Value { return c.cols[j].Value(i) }

// Grow reserves capacity for n more rows in every column, so chunked
// ingest with a known size estimate avoids per-column slice regrowth.
// Single-writer, like AppendRow.
func (c *Columnar) Grow(n int) {
	for _, col := range c.cols {
		col.Grow(n)
	}
}

// AppendRow adds a row after validating its width.
func (c *Columnar) AppendRow(row []Value) error {
	if len(row) != c.schema.Len() {
		return fmt.Errorf("dataset: row has %d cells, schema has %d attributes", len(row), c.schema.Len())
	}
	for j, v := range row {
		c.cols[j].Append(v)
	}
	c.rows++
	return nil
}

// MustAppend is AppendRow that panics on error, for fixtures.
func (c *Columnar) MustAppend(row ...Value) {
	if err := c.AppendRow(row); err != nil {
		panic(err)
	}
}

// appendCell grows column j without the per-row width check; the caller
// (the CSV ingest paths) advances the row count itself.
func (c *Columnar) appendCell(j int, v Value) { c.cols[j].Append(v) }

// Table materializes the row-oriented compatibility view: a Table whose
// Rows share the dictionary cells and whose columnar backing is this
// Columnar, so the vectorized paths (eqclass grouping, engine precompute,
// histogram tallies) reuse the codes without re-encoding.
func (c *Columnar) Table() *Table {
	rows := make([][]Value, c.rows)
	ncol := len(c.cols)
	cells := make([]Value, c.rows*ncol)
	for i := range rows {
		rows[i] = cells[i*ncol : (i+1)*ncol : (i+1)*ncol]
		for j, col := range c.cols {
			rows[i][j] = col.dict[col.codes[i]]
		}
	}
	t := &Table{Schema: c.schema, Rows: rows}
	t.cols = c
	return t
}
