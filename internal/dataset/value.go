// Package dataset provides the typed microdata table substrate used by every
// other package in this module: schemas, attribute roles, tagged-union cell
// values (exact, interval, set, suppressed), and a CSV codec.
//
// The representation follows the paper's §3 conventions: a data set of size N
// over a attributes is a collection of N tuples, and an anonymized data set
// has exactly the same size as the original — suppressed tuples remain present
// in an overly generalized form rather than being removed.
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind discriminates the tagged union stored in a Value.
type ValueKind uint8

const (
	// Missing marks an absent cell. The zero Value is Missing.
	Missing ValueKind = iota
	// Num is an exact numeric value (age 28, zip 13053 when treated
	// numerically, ...).
	Num
	// Str is an exact string value (marital status "Divorced", ...).
	Str
	// Interval is a half-open numeric range (lo, hi], the generalized form
	// of numeric values. The paper prints these as "(25,35]".
	Interval
	// Prefix is a generalized string where a trailing portion has been
	// masked, printed as "1305*". Base holds the retained prefix and
	// Masked the number of masked characters.
	Prefix
	// Set is a generalized categorical value naming an interior node of a
	// taxonomy ("Married", "Not Married", ...).
	Set
	// Star is the fully suppressed value, printed "*". It generalizes any
	// value of the attribute.
	Star
)

// String returns the kind name, mainly for error messages.
func (k ValueKind) String() string {
	switch k {
	case Missing:
		return "missing"
	case Num:
		return "num"
	case Str:
		return "str"
	case Interval:
		return "interval"
	case Prefix:
		return "prefix"
	case Set:
		return "set"
	case Star:
		return "star"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is one cell of a microdata table. It is a small immutable tagged
// union; use the constructor functions rather than building literals.
type Value struct {
	kind   ValueKind
	num    float64 // Num: the value; Interval: lo
	hi     float64 // Interval: hi
	str    string  // Str: the value; Prefix: retained prefix; Set: node label
	masked int     // Prefix: number of masked characters
}

// NumVal returns an exact numeric value.
func NumVal(v float64) Value { return Value{kind: Num, num: v} }

// StrVal returns an exact string value.
func StrVal(s string) Value { return Value{kind: Str, str: s} }

// IntervalVal returns the half-open interval (lo, hi].
func IntervalVal(lo, hi float64) Value {
	if hi < lo {
		lo, hi = hi, lo
	}
	return Value{kind: Interval, num: lo, hi: hi}
}

// PrefixVal returns a masked string value retaining prefix and masking n
// trailing characters, printed as prefix followed by n asterisks.
func PrefixVal(prefix string, n int) Value {
	if n < 0 {
		n = 0
	}
	return Value{kind: Prefix, str: prefix, masked: n}
}

// SetVal returns a generalized categorical value carrying the label of a
// taxonomy node.
func SetVal(label string) Value { return Value{kind: Set, str: label} }

// StarVal returns the fully suppressed value.
func StarVal() Value { return Value{kind: Star} }

// Kind reports which member of the union is stored.
func (v Value) Kind() ValueKind { return v.kind }

// IsExact reports whether the value is an ungeneralized ground value.
func (v Value) IsExact() bool { return v.kind == Num || v.kind == Str }

// IsSuppressed reports whether the value is the fully suppressed "*".
func (v Value) IsSuppressed() bool { return v.kind == Star }

// Float returns the numeric value of a Num cell. It panics for other kinds;
// use Kind first when the kind is not statically known.
func (v Value) Float() float64 {
	if v.kind != Num {
		panic(fmt.Sprintf("dataset: Float on %s value", v.kind))
	}
	return v.num
}

// Bounds returns the (lo, hi] bounds of an Interval cell.
func (v Value) Bounds() (lo, hi float64) {
	if v.kind != Interval {
		panic(fmt.Sprintf("dataset: Bounds on %s value", v.kind))
	}
	return v.num, v.hi
}

// Text returns the string payload of a Str, Prefix or Set cell.
func (v Value) Text() string {
	switch v.kind {
	case Str, Prefix, Set:
		return v.str
	}
	panic(fmt.Sprintf("dataset: Text on %s value", v.kind))
}

// MaskedLen returns the number of masked characters of a Prefix cell.
func (v Value) MaskedLen() int {
	if v.kind != Prefix {
		panic(fmt.Sprintf("dataset: MaskedLen on %s value", v.kind))
	}
	return v.masked
}

// Equal reports structural equality of two values.
func (v Value) Equal(w Value) bool { return v == w }

// Covers reports whether v, viewed as a (possibly generalized) value,
// covers the exact ground value g. A Star covers everything; an Interval
// covers numbers in (lo,hi]; a Prefix covers strings with that prefix and
// total length len(prefix)+masked; exact values cover only themselves.
// Set coverage depends on a taxonomy and is resolved by package hierarchy;
// here a Set covers only an identical Set.
func (v Value) Covers(g Value) bool {
	switch v.kind {
	case Star:
		return true
	case Num, Str, Set:
		return v == g
	case Interval:
		switch g.kind {
		case Num:
			return g.num > v.num && g.num <= v.hi
		case Interval:
			return g.num >= v.num && g.hi <= v.hi
		}
		return false
	case Prefix:
		var s string
		switch g.kind {
		case Str:
			s = g.str
		case Num:
			s = trimFloat(g.num)
		case Prefix:
			return strings.HasPrefix(g.str, v.str) && len(g.str)+g.masked == len(v.str)+v.masked
		default:
			return false
		}
		return strings.HasPrefix(s, v.str) && len(s) == len(v.str)+v.masked
	}
	return false
}

// Key returns a canonical string used to group identical (generalized)
// values into equivalence classes. Distinct values have distinct keys.
func (v Value) Key() string {
	switch v.kind {
	case Missing:
		return "\x00missing"
	case Num:
		return "n:" + strconv.FormatFloat(v.num, 'g', -1, 64)
	case Str:
		return "s:" + v.str
	case Interval:
		return "i:" + strconv.FormatFloat(v.num, 'g', -1, 64) + "," + strconv.FormatFloat(v.hi, 'g', -1, 64)
	case Prefix:
		return "p:" + v.str + "/" + strconv.Itoa(v.masked)
	case Set:
		return "g:" + v.str
	case Star:
		return "*"
	}
	return "?"
}

// String renders the value the way the paper prints it: numbers bare,
// intervals "(25,35]", prefixes "1305*", suppression "*".
func (v Value) String() string {
	switch v.kind {
	case Missing:
		return "?"
	case Num:
		return trimFloat(v.num)
	case Str, Set:
		return v.str
	case Interval:
		return "(" + trimFloat(v.num) + "," + trimFloat(v.hi) + "]"
	case Prefix:
		return v.str + strings.Repeat("*", v.masked)
	case Star:
		return "*"
	}
	return "?"
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
