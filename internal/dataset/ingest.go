package dataset

import (
	"fmt"
	"io"
	"strings"
)

// CSVIngester is a push-style, chunk-tolerant CSV parser building a
// Columnar table: callers feed arbitrary byte chunks (network frames, file
// blocks) via Write and the ingester assembles complete CSV records across
// chunk boundaries — including quoted fields containing commas, escaped
// quotes and embedded newlines — parsing each record straight into
// dictionary-encoded columns. No [][]Value is ever materialized and no
// more than one record of text is buffered beyond the unconsumed tail.
//
// The accepted record syntax mirrors ReadCSV (RFC 4180 with strict
// quoting): the first record must be the header matching the schema's
// attribute names in order, "" escapes a quote inside a quoted field,
// \r\n inside a quoted field normalizes to \n, empty lines are skipped,
// and a bare quote inside an unquoted field is an error. The chunked and
// whole-input parses are byte-for-byte identical regardless of where the
// chunk boundaries fall.
type CSVIngester struct {
	schema *Schema
	cols   *Columnar

	buf     []byte // unconsumed input tail
	scanned int    // bytes of buf already boundary-scanned
	inQuote bool   // quote state at buf[scanned]

	record    int   // 1-based record counter (header is record 1)
	parsed    int64 // bytes consumed by completed records, for row estimates
	sawHeader bool
	closed    bool
	err       error

	fields []string // per-record scratch
}

// NewCSVIngester returns an ingester for the schema. Feed chunks with
// Write, then Close; the accumulated table is available via Columnar or
// Table.
func NewCSVIngester(schema *Schema) *CSVIngester {
	return &CSVIngester{schema: schema, cols: NewColumnar(schema)}
}

// Write feeds one chunk. It implements io.Writer: every call consumes the
// whole chunk or returns the error that stopped parsing; once an error is
// returned, the ingester is poisoned and further calls return it again.
func (g *CSVIngester) Write(p []byte) (int, error) {
	if g.err != nil {
		return 0, g.err
	}
	if g.closed {
		g.err = fmt.Errorf("dataset: CSV ingest: write after Close")
		return 0, g.err
	}
	// Preallocate the column builders from the chunk size: once a few
	// records have been parsed, the running bytes-per-record average turns
	// the incoming chunk length into a row estimate, so large ingests grow
	// each column once per chunk instead of O(log rows) times via append.
	if g.record > 0 && g.parsed > 0 {
		if avg := g.parsed / int64(g.record); avg > 0 {
			g.cols.Grow(int(int64(len(p))/avg) + 1)
		}
	}
	g.buf = append(g.buf, p...)
	if err := g.drain(); err != nil {
		g.err = err
		return 0, err
	}
	return len(p), nil
}

// Close flushes a final unterminated record (input not ending in a
// newline) and seals the ingester.
func (g *CSVIngester) Close() error {
	if g.err != nil {
		return g.err
	}
	if g.closed {
		return nil
	}
	g.closed = true
	if g.inQuote {
		g.err = fmt.Errorf("dataset: CSV ingest: unterminated quoted field at end of input")
		return g.err
	}
	if len(g.buf) > 0 {
		if err := g.endRecord(g.buf); err != nil {
			g.err = err
			return err
		}
		g.buf = nil
	}
	if !g.sawHeader {
		g.err = fmt.Errorf("dataset: CSV ingest: no header record")
		return g.err
	}
	return nil
}

// Len returns the number of data rows ingested so far.
func (g *CSVIngester) Len() int { return g.cols.Len() }

// Columnar returns the accumulated columnar table. Call after Close; the
// result reflects only fully parsed records.
func (g *CSVIngester) Columnar() *Columnar { return g.cols }

// Table returns the accumulated table materialized as the row-oriented
// compatibility view, carrying its columnar backing.
func (g *CSVIngester) Table() *Table { return g.cols.Table() }

// ingestChunk is the read-buffer size IngestCSV pipelines with: large
// enough to amortize syscalls, small enough that two in-flight buffers
// stay cache- and memory-friendly.
const ingestChunk = 256 << 10

// IngestCSV streams a CSV source straight into dictionary-encoded columns
// through the chunk-tolerant push ingester, pipelining reads against
// parsing: a reader goroutine fills one fixed-size buffer while the
// calling goroutine parses the other, so chunks flow into the column
// builders with no full-input materialization barrier and at most two
// chunks of input are ever resident. Parsing semantics are exactly
// CSVIngester's (RFC 4180 strict quoting, header validated against the
// schema).
func IngestCSV(r io.Reader, schema *Schema) (*Columnar, error) {
	g := NewCSVIngester(schema)
	free := make(chan []byte, 2)
	free <- make([]byte, ingestChunk)
	free <- make([]byte, ingestChunk)
	full := make(chan []byte, 2)
	readErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(full)
		for {
			var buf []byte
			select {
			case buf = <-free:
			case <-done:
				return
			}
			n, err := r.Read(buf[:ingestChunk])
			if n > 0 {
				select {
				case full <- buf[:n]:
				case <-done:
					return
				}
			}
			if err != nil {
				if err == io.EOF {
					err = nil
				}
				readErr <- err
				return
			}
		}
	}()
	for buf := range full {
		if _, err := g.Write(buf); err != nil {
			return nil, err
		}
		select {
		case free <- buf[:ingestChunk]:
		default: // reader already gone; buffer no longer needed
		}
	}
	if err := <-readErr; err != nil {
		return nil, fmt.Errorf("dataset: CSV ingest: %w", err)
	}
	if err := g.Close(); err != nil {
		return nil, err
	}
	return g.Columnar(), nil
}

// IngestCSVTable is IngestCSV materializing the row-oriented compatibility
// view, carrying its columnar backing.
func IngestCSVTable(r io.Reader, schema *Schema) (*Table, error) {
	c, err := IngestCSV(r, schema)
	if err != nil {
		return nil, err
	}
	return c.Table(), nil
}

// drain scans the buffered bytes for complete records (newlines outside
// quoted fields) and parses each one, compacting the buffer afterwards.
func (g *CSVIngester) drain() error {
	start := 0
	for i := g.scanned; i < len(g.buf); i++ {
		switch g.buf[i] {
		case '"':
			// Toggling on every quote is exact for well-formed CSV: quotes
			// appear only opening/closing fields or doubled inside quoted
			// fields, and a doubled "" toggles out and straight back in.
			g.inQuote = !g.inQuote
		case '\n':
			if !g.inQuote {
				if err := g.endRecord(g.buf[start:i]); err != nil {
					return err
				}
				start = i + 1
			}
		}
	}
	g.scanned = len(g.buf)
	if start > 0 {
		g.parsed += int64(start)
		rest := copy(g.buf, g.buf[start:])
		g.buf = g.buf[:rest]
		g.scanned = rest
	}
	return nil
}

// endRecord handles one complete record line (without its terminating
// newline): header validation for record 1, cell parsing into the columns
// for every later record. Empty lines are skipped, as encoding/csv does.
func (g *CSVIngester) endRecord(line []byte) error {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) == 0 {
		return nil
	}
	g.record++
	fields, err := g.splitRecord(line)
	if err != nil {
		return err
	}
	if len(fields) != g.schema.Len() {
		return fmt.Errorf("dataset: CSV ingest: record %d has %d fields, schema has %d attributes", g.record, len(fields), g.schema.Len())
	}
	if !g.sawHeader {
		for j, a := range g.schema.Attrs {
			if strings.TrimSpace(fields[j]) != a.Name {
				return fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", j, fields[j], a.Name)
			}
		}
		g.sawHeader = true
		return nil
	}
	for j, field := range fields {
		v, err := ParseValue(strings.TrimSpace(field), g.schema.Attrs[j].Kind)
		if err != nil {
			return fmt.Errorf("dataset: line %d, column %q: %w", g.record, g.schema.Attrs[j].Name, err)
		}
		g.cols.appendCell(j, v)
	}
	g.cols.rows++
	return nil
}

// splitRecord splits one record into fields with RFC 4180 strict-quote
// semantics, matching encoding/csv for well-formed input.
func (g *CSVIngester) splitRecord(line []byte) ([]string, error) {
	fields := g.fields[:0]
	i := 0
	for {
		if i < len(line) && line[i] == '"' {
			i++
			var b strings.Builder
			closed := false
			for i < len(line) {
				c := line[i]
				if c == '"' {
					if i+1 < len(line) && line[i+1] == '"' {
						b.WriteByte('"')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				if c == '\r' && i+1 < len(line) && line[i+1] == '\n' {
					// encoding/csv normalizes \r\n inside quoted fields.
					b.WriteByte('\n')
					i += 2
					continue
				}
				b.WriteByte(c)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("dataset: CSV ingest: record %d: missing closing quote", g.record)
			}
			if i < len(line) && line[i] != ',' {
				return nil, fmt.Errorf("dataset: CSV ingest: record %d: extraneous data after quoted field", g.record)
			}
			fields = append(fields, b.String())
		} else {
			start := i
			for i < len(line) && line[i] != ',' {
				if line[i] == '"' {
					return nil, fmt.Errorf("dataset: CSV ingest: record %d: bare quote in unquoted field", g.record)
				}
				i++
			}
			fields = append(fields, string(line[start:i]))
		}
		if i >= len(line) {
			break
		}
		i++ // consume the comma; a trailing comma yields a final empty field
	}
	g.fields = fields
	return fields, nil
}
