package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"microdata/internal/kernels"
)

func TestFloat64ColumnBasics(t *testing.T) {
	c := NewFloat64Column(4)
	if c.Len() != 0 {
		t.Fatalf("fresh Len = %d", c.Len())
	}
	for _, v := range []float64{3, 1, 2} {
		c.Append(v)
	}
	if c.Len() != 3 || c.At(1) != 1 {
		t.Fatalf("Len=%d At(1)=%v", c.Len(), c.At(1))
	}
	c.Grow(1000)
	if cap(c.Values()) < 1003 {
		t.Fatalf("Grow(1000) cap = %d", cap(c.Values()))
	}
	if c.Len() != 3 || c.At(0) != 3 || c.At(2) != 2 {
		t.Fatalf("Grow corrupted contents: len=%d", c.Len())
	}
}

func TestFloat64ColumnMinMax(t *testing.T) {
	if _, _, ok := NewFloat64Column(0).MinMax(); ok {
		t.Error("empty column: ok should be false")
	}
	if _, _, ok := Float64ColumnOf([]float64{math.NaN(), math.NaN()}).MinMax(); ok {
		t.Error("all-NaN column: ok should be false")
	}
	lo, hi, ok := Float64ColumnOf([]float64{2, math.NaN(), -7, 13}).MinMax()
	if !ok || lo != -7 || hi != 13 {
		t.Fatalf("MinMax = %v %v %v, want -7 13 true", lo, hi, ok)
	}
	if v, ok := Float64ColumnOf([]float64{5, 1}).Min(); !ok || v != 1 {
		t.Fatalf("Min = %v %v", v, ok)
	}
	if v, ok := Float64ColumnOf([]float64{5, 1}).Max(); !ok || v != 5 {
		t.Fatalf("Max = %v %v", v, ok)
	}
}

// TestFloat64ColumnSumDeterministic pins the determinism contract: the
// morsel-order fold makes Sum (and hence Mean) bit-identical for every
// worker count, even though float addition is not associative.
func TestFloat64ColumnSumDeterministic(t *testing.T) {
	defer kernels.SetDefaultWorkers(0)
	rng := rand.New(rand.NewSource(8))
	n := 3*kernels.MorselRows + 4321 // several morsels plus a ragged tail
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)))
	}
	c := Float64ColumnOf(vals)

	kernels.SetDefaultWorkers(1)
	want := c.Sum()
	for _, w := range []int{2, 3, 8, 16} {
		kernels.SetDefaultWorkers(w)
		if got := c.Sum(); got != want {
			t.Fatalf("workers=%d: Sum %v != %v (must be bit-identical)", w, got, want)
		}
	}

	small := Float64ColumnOf([]float64{1.5, 2.5, -1})
	if got := small.Sum(); got != 3 {
		t.Fatalf("small Sum = %v", got)
	}
	if m, ok := small.Mean(); !ok || m != 1 {
		t.Fatalf("Mean = %v %v", m, ok)
	}
	if _, ok := NewFloat64Column(0).Mean(); ok {
		t.Error("empty Mean: ok should be false")
	}
}

func TestFloat64ColumnRanks(t *testing.T) {
	got := Float64ColumnOf([]float64{10, 20, 20, 30}).Ranks()
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks(10,20,20,30) = %v, want %v", got, want)
		}
	}

	// Randomized against the naive definition: rank(i) = average 1-based
	// sorted position over i's tie group.
	rng := rand.New(rand.NewSource(21))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = float64(rng.Intn(40)) // plenty of ties
	}
	got = Float64ColumnOf(vals).Ranks()
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for i, v := range vals {
		lo := sort.SearchFloat64s(sorted, v)
		hi := sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
		want := float64(lo+hi+1) / 2
		if got[i] != want {
			t.Fatalf("rank[%d] (v=%v) = %v, want %v", i, v, got[i], want)
		}
	}
}

func TestInt64Column(t *testing.T) {
	c := NewInt64Column(2)
	for _, v := range []int64{7, -3, 12, 0} {
		c.Append(v)
	}
	if c.Len() != 4 || c.At(2) != 12 {
		t.Fatalf("Len=%d At(2)=%d", c.Len(), c.At(2))
	}
	lo, hi, ok := c.MinMax()
	if !ok || lo != -3 || hi != 12 {
		t.Fatalf("MinMax = %d %d %v", lo, hi, ok)
	}
	if _, _, ok := NewInt64Column(0).MinMax(); ok {
		t.Error("empty MinMax: ok should be false")
	}
	if got := c.Sum(); got != 16 {
		t.Fatalf("Sum = %d", got)
	}
	f := c.Float64()
	if f.Len() != 4 || f.At(1) != -3 {
		t.Fatalf("Float64 conversion: len=%d at(1)=%v", f.Len(), f.At(1))
	}

	// Large column exercises the sharded sum against a scalar loop.
	rng := rand.New(rand.NewSource(4))
	big := NewInt64Column(2 * kernels.MorselRows)
	var want int64
	for i := 0; i < 2*kernels.MorselRows+99; i++ {
		v := int64(rng.Intn(1000) - 500)
		big.Append(v)
		want += v
	}
	if got := big.Sum(); got != want {
		t.Fatalf("sharded Sum = %d, want %d", got, want)
	}
}

func TestColumnTypedViews(t *testing.T) {
	num := NewColumn()
	for _, v := range []float64{1, 2, 1, 3} {
		num.Append(NumVal(v))
	}
	fc, ok := num.Float64View()
	if !ok {
		t.Fatal("Float64View on numeric column failed")
	}
	for i, want := range []float64{1, 2, 1, 3} {
		if fc.At(i) != want {
			t.Fatalf("view[%d] = %v, want %v", i, fc.At(i), want)
		}
	}
	// The view is cached until the column grows.
	if fc2, _ := num.Float64View(); fc2 != fc {
		t.Error("Float64View not cached")
	}
	num.Append(NumVal(9))
	fc3, ok := num.Float64View()
	if !ok || fc3.Len() != 5 || fc3.At(4) != 9 {
		t.Fatalf("view after growth: ok=%v len=%d", ok, fc3.Len())
	}

	ic, ok := num.Int64View()
	if !ok || ic.At(4) != 9 {
		t.Fatalf("Int64View: ok=%v", ok)
	}
	if ic2, _ := num.Int64View(); ic2 != ic {
		t.Error("Int64View not cached")
	}

	// Fractional values are float-viewable but not int-viewable.
	frac := NewColumn()
	frac.Append(NumVal(1.5))
	if _, ok := frac.Float64View(); !ok {
		t.Error("Float64View should accept fractions")
	}
	if _, ok := frac.Int64View(); ok {
		t.Error("Int64View should reject fractions")
	}
	// Magnitudes beyond 2^53 are not exactly representable as int64 paths.
	huge := NewColumn()
	huge.Append(NumVal(math.Pow(2, 53)))
	if _, ok := huge.Int64View(); ok {
		t.Error("Int64View should reject |v| >= 2^53")
	}

	// Non-numeric columns expose no typed view.
	str := NewColumn()
	str.Append(StrVal("x"))
	if _, ok := str.Float64View(); ok {
		t.Error("Float64View on Str column should fail")
	}
	if _, ok := str.Int64View(); ok {
		t.Error("Int64View on Str column should fail")
	}
}

func TestColumnGrow(t *testing.T) {
	c := NewColumn()
	c.Append(NumVal(1))
	c.Grow(100)
	if c.Len() != 1 || cap(c.Codes()) < 101 {
		t.Fatalf("Grow: len=%d cap=%d", c.Len(), cap(c.Codes()))
	}
	if c.Value(0).Float() != 1 {
		t.Fatal("Grow corrupted contents")
	}

	schema := demoSchema(t)
	cols := NewColumnar(schema)
	cols.Grow(50)
	for j := 0; j < schema.Len(); j++ {
		if cap(cols.Col(j).Codes()) < 50 {
			t.Fatalf("Columnar.Grow: col %d cap=%d", j, cap(cols.Col(j).Codes()))
		}
	}
}

func TestTableFloat64Column(t *testing.T) {
	schema := MustSchema(
		Attribute{Name: "A", Kind: Numeric, Role: QuasiIdentifier},
		Attribute{Name: "B", Kind: Categorical, Role: Sensitive},
	)
	tab := NewTable(schema)
	for i := 0; i < 10; i++ {
		tab.MustAppend(NumVal(float64(i*i)), StrVal("s"))
	}

	// Plain (row-backed) path: direct row scan, no dictionary built.
	fc, ok := tab.Float64Column(0)
	if !ok || fc.Len() != 10 || fc.At(3) != 9 {
		t.Fatalf("Float64Column: ok=%v", ok)
	}
	if fc2, _ := tab.Float64Column(0); fc2 != fc {
		t.Error("typed column not cached")
	}
	// The non-numeric column is negatively cached.
	if _, ok := tab.Float64Column(1); ok {
		t.Error("Float64Column on categorical should fail")
	}
	if _, ok := tab.Float64Column(1); ok {
		t.Error("negative cache should persist")
	}

	// NumericRange prefers the already-materialized typed column.
	lo, hi, ok := tab.NumericRange(0)
	if !ok || lo != 0 || hi != 81 {
		t.Fatalf("NumericRange = %v %v %v", lo, hi, ok)
	}

	// Mutation invalidates: appended rows must be visible afterwards.
	tab.InvalidateColumns()
	tab.MustAppend(NumVal(1000), StrVal("s"))
	fc3, ok := tab.Float64Column(0)
	if !ok || fc3.Len() != 11 || fc3.At(10) != 1000 {
		t.Fatalf("after invalidate: ok=%v len=%d", ok, fc3.Len())
	}

	// Columnar-backed path delegates to the dictionary-expansion view.
	tab.Columnar()
	fc4, ok := tab.Float64Column(0)
	if !ok || fc4.Len() != 11 || fc4.At(10) != 1000 {
		t.Fatalf("backed path: ok=%v len=%d", ok, fc4.Len())
	}
}

// TestIngestCSVMatchesReadCSV pins the pipelined double-buffered ingest to
// the one-shot reference on a CSV large enough to span several read
// buffers, plus the quote-hostile sample.
func TestIngestCSVMatchesReadCSV(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("ZipCode,Age,MaritalStatus\n")
	rng := rand.New(rand.NewSource(17))
	statuses := []string{"Married", "Separated", "CF-Spouse", "Never-married"}
	for i := 0; i < 40000; i++ { // ~1 MiB, several 256 KiB ingest buffers
		fmt.Fprintf(&sb, "%05d,%d,%s\n", 10000+rng.Intn(90000), rng.Intn(90), statuses[rng.Intn(len(statuses))])
	}
	for name, in := range map[string]string{"large": sb.String(), "quoted": quotedCSV} {
		want, err := ReadCSV(strings.NewReader(in), demoSchema(t))
		if err != nil {
			t.Fatal(err)
		}
		got, err := IngestCSVTable(strings.NewReader(in), demoSchema(t))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("%s: Len %d != %d", name, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			for j := 0; j < want.Schema.Len(); j++ {
				if g, w := got.At(i, j).Key(), want.At(i, j).Key(); g != w {
					t.Fatalf("%s: cell (%d,%d): %q != %q", name, i, j, g, w)
				}
			}
		}
	}

	// Errors propagate from the parser through the pipeline.
	if _, err := IngestCSV(strings.NewReader("Zip,Age,MaritalStatus\nx\n"), demoSchema(t)); err == nil {
		t.Error("bad header should fail")
	}
}
