package dataset

import "testing"

func hashTestTable(t *testing.T) *Table {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "age", Kind: Numeric, Role: QuasiIdentifier},
		Attribute{Name: "zip", Kind: Categorical, Role: QuasiIdentifier},
		Attribute{Name: "disease", Kind: Categorical, Role: Sensitive},
	)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(s)
	tab.MustAppend(NumVal(30), StrVal("021*"), StrVal("flu"))
	tab.MustAppend(NumVal(41), StrVal("022*"), StrVal("cold"))
	return tab
}

func TestHashDeterministicAndBackingIndependent(t *testing.T) {
	a := hashTestTable(t)
	b := hashTestTable(t)
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("identical tables hash differently: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Errorf("hash is not sha256 hex: %q", ha)
	}
	// Materializing the columnar backing must not change the hash.
	b.Columnar()
	hc, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc != ha {
		t.Errorf("columnar backing changed the hash: %s vs %s", hc, ha)
	}
}

func TestHashSensitivity(t *testing.T) {
	a := hashTestTable(t)
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// A single cell change changes the hash.
	b := hashTestTable(t)
	b.Rows[1][0] = NumVal(42)
	b.InvalidateColumns()
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hb == ha {
		t.Error("cell edit did not change the hash")
	}
	// A role change (same cell text) changes the hash too.
	c := hashTestTable(t)
	c.Schema = c.Schema.Clone()
	c.Schema.Attrs[1].Role = Insensitive
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("schema role change did not change the hash")
	}
}
