package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Hash returns the SHA-256 (hex) content hash of the table: the schema's
// attribute names, kinds and roles followed by every cell rendered the way
// WriteCSV renders it. Two tables with identical schemas and identical
// row contents hash identically regardless of their backing (row slices
// vs columnar), which makes the hash a stable dataset fingerprint for
// perf packs and result caching.
func (t *Table) Hash() (string, error) {
	h := sha256.New()
	for _, a := range t.Schema.Attrs {
		fmt.Fprintf(h, "%s\x1f%d\x1f%d\x1e", a.Name, a.Kind, a.Role)
	}
	h.Write([]byte{'\x1d'})
	if err := WriteCSV(h, t); err != nil {
		return "", fmt.Errorf("dataset: hashing table: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
