package dataset

import (
	"strings"
	"testing"
)

func demoTable(t *testing.T) *Table {
	t.Helper()
	tab, err := ReadCSV(strings.NewReader(demoCSV), demoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestColumnDictionary(t *testing.T) {
	c := NewColumn()
	codes := []uint32{
		c.Append(StrVal("a")),
		c.Append(StrVal("b")),
		c.Append(StrVal("a")),
		c.Append(StarVal()),
		c.Append(StrVal("b")),
	}
	want := []uint32{0, 1, 0, 2, 1}
	for i, cd := range codes {
		if cd != want[i] {
			t.Errorf("code %d = %d, want %d", i, cd, want[i])
		}
	}
	if c.Len() != 5 || c.Card() != 3 {
		t.Fatalf("Len=%d Card=%d", c.Len(), c.Card())
	}
	// Dictionary order is first appearance; values round-trip by Key.
	for i := range codes {
		if got := c.Value(i).Key(); got != c.DictKeys()[c.Code(i)] {
			t.Errorf("row %d: Value key %q != dict key", i, got)
		}
	}
	if c.IsNumeric() {
		t.Error("mixed column claims numeric")
	}
}

func TestColumnNumericDict(t *testing.T) {
	c := NewColumn()
	c.Append(NumVal(28))
	c.Append(NumVal(41))
	c.Append(NumVal(28))
	if !c.IsNumeric() {
		t.Fatal("all-Num column should be numeric")
	}
	nums := c.NumericDict()
	if len(nums) != 2 || nums[0] != 28 || nums[1] != 41 {
		t.Fatalf("NumericDict = %v", nums)
	}
	floats, ok := c.Floats()
	if !ok {
		t.Fatal("Floats should succeed on a numeric column")
	}
	for i, want := range []float64{28, 41, 28} {
		if floats[i] != want {
			t.Errorf("Floats[%d] = %v, want %v", i, floats[i], want)
		}
	}
	c.Append(StarVal())
	if c.IsNumeric() {
		t.Error("column with a star should not be numeric")
	}
}

func TestColumnValuesView(t *testing.T) {
	c := NewColumn()
	c.Append(StrVal("x"))
	v1 := c.Values()
	if len(v1) != 1 {
		t.Fatalf("view length %d", len(v1))
	}
	c.Append(StrVal("y"))
	v2 := c.Values()
	if len(v2) != 2 || v2[1].Text() != "y" {
		t.Fatalf("view after append: %v", v2)
	}
}

func TestTableColumnarBacking(t *testing.T) {
	tab := demoTable(t)
	bc := tab.Columnar()
	if bc == nil || bc.Len() != tab.Len() {
		t.Fatal("missing columnar backing")
	}
	if tab.Columnar() != bc {
		t.Error("backing not cached")
	}
	// Cell-level agreement between the row view and the columns.
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if got, want := bc.At(i, j).Key(), tab.At(i, j).Key(); got != want {
				t.Errorf("cell (%d,%d): %q != %q", i, j, got, want)
			}
		}
	}
	// Append invalidates; the next Columnar call rebuilds at the new size.
	tab.MustAppend(StrVal("13070"), NumVal(33), StrVal("Divorced"))
	bc2 := tab.Columnar()
	if bc2 == bc || bc2.Len() != tab.Len() {
		t.Fatal("backing not rebuilt after Append")
	}
	// In-place cell mutation requires explicit invalidation.
	tab.Rows[0][2] = StrVal("Widowed")
	tab.InvalidateColumns()
	if got := tab.Columnar().At(0, 2).Text(); got != "Widowed" {
		t.Fatalf("stale backing after InvalidateColumns: %q", got)
	}
}

func TestTableColumnSharesBacking(t *testing.T) {
	tab := demoTable(t)
	tab.Columnar()
	col := tab.Column(1)
	if len(col) != tab.Len() {
		t.Fatalf("column length %d", len(col))
	}
	for i := range col {
		if !col[i].Equal(tab.At(i, 1)) {
			t.Errorf("row %d: %v != %v", i, col[i], tab.At(i, 1))
		}
	}
}

func TestColumnarTableRoundTrip(t *testing.T) {
	schema := demoSchema(t)
	c := NewColumnar(schema)
	c.MustAppend(StrVal("13053"), NumVal(28), StrVal("CF-Spouse"))
	c.MustAppend(PrefixVal("1305", 1), IntervalVal(25, 35), StarVal())
	if err := c.AppendRow([]Value{StrVal("x")}); err == nil {
		t.Error("short row should error")
	}
	tab := c.Table()
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Columnar() != c {
		t.Error("materialized table should carry its columnar backing")
	}
	if got := tab.At(1, 1); !got.Equal(IntervalVal(25, 35)) {
		t.Errorf("cell (1,1) = %v", got)
	}
}

func TestSchemaIndexMemo(t *testing.T) {
	s := demoSchema(t)
	if got := s.Index("Age"); got != 1 {
		t.Fatalf("Index(Age) = %d", got)
	}
	if got := s.Index("Nope"); got != -1 {
		t.Fatalf("Index(Nope) = %d", got)
	}
	cl := s.Clone()
	if got := cl.Index("MaritalStatus"); got != 2 {
		t.Fatalf("cloned Index(MaritalStatus) = %d", got)
	}
}

func TestDistinctCountColumnarFastPath(t *testing.T) {
	tab := demoTable(t)
	fresh := NewTable(tab.Schema)
	for _, row := range tab.Rows {
		fresh.MustAppend(row...)
	}
	want := fresh.DistinctCount(0) // unbacked slow path
	tab.Columnar()                 // warm the backing; fast path must agree
	got := tab.DistinctCount(0)
	if got != want {
		t.Fatalf("DistinctCount fast path %d != %d", got, want)
	}
}
