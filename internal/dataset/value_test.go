package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	v := NumVal(28)
	if v.Kind() != Num || v.Float() != 28 {
		t.Fatalf("NumVal: got kind %v value %v", v.Kind(), v.Float())
	}
	s := StrVal("Divorced")
	if s.Kind() != Str || s.Text() != "Divorced" {
		t.Fatalf("StrVal: got kind %v text %q", s.Kind(), s.Text())
	}
	iv := IntervalVal(25, 35)
	lo, hi := iv.Bounds()
	if iv.Kind() != Interval || lo != 25 || hi != 35 {
		t.Fatalf("IntervalVal: got kind %v bounds (%v,%v]", iv.Kind(), lo, hi)
	}
	p := PrefixVal("1305", 1)
	if p.Kind() != Prefix || p.Text() != "1305" || p.MaskedLen() != 1 {
		t.Fatalf("PrefixVal: got %v %q %d", p.Kind(), p.Text(), p.MaskedLen())
	}
	g := SetVal("Married")
	if g.Kind() != Set || g.Text() != "Married" {
		t.Fatalf("SetVal: got %v %q", g.Kind(), g.Text())
	}
	st := StarVal()
	if st.Kind() != Star || !st.IsSuppressed() {
		t.Fatalf("StarVal: got %v", st.Kind())
	}
	var zero Value
	if zero.Kind() != Missing {
		t.Fatalf("zero Value should be Missing, got %v", zero.Kind())
	}
}

func TestIntervalValSwapsReversedBounds(t *testing.T) {
	iv := IntervalVal(35, 25)
	lo, hi := iv.Bounds()
	if lo != 25 || hi != 35 {
		t.Fatalf("got (%v,%v], want (25,35]", lo, hi)
	}
}

func TestPrefixValNegativeMaskClamped(t *testing.T) {
	p := PrefixVal("13", -3)
	if p.MaskedLen() != 0 {
		t.Fatalf("got masked %d, want 0", p.MaskedLen())
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NumVal(28), "28"},
		{NumVal(3.5), "3.5"},
		{StrVal("CF-Spouse"), "CF-Spouse"},
		{IntervalVal(25, 35), "(25,35]"},
		{PrefixVal("1305", 1), "1305*"},
		{PrefixVal("13", 3), "13***"},
		{SetVal("Not Married"), "Not Married"},
		{StarVal(), "*"},
		{Value{}, "?"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	vals := []Value{
		NumVal(5), StrVal("5"), SetVal("5"), PrefixVal("5", 0),
		IntervalVal(5, 5), StarVal(), {},
		NumVal(50), IntervalVal(5, 50), PrefixVal("5", 1),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision %q between %v and %v", k, prev, v)
		}
		seen[k] = v
	}
}

func TestValueCovers(t *testing.T) {
	cases := []struct {
		g, v Value
		want bool
	}{
		{NumVal(28), StarVal(), true},
		{StrVal("x"), StarVal(), true},
		{NumVal(28), IntervalVal(25, 35), true},
		{NumVal(25), IntervalVal(25, 35), false}, // half-open: lo excluded
		{NumVal(35), IntervalVal(25, 35), true},  // hi included
		{NumVal(36), IntervalVal(25, 35), false},
		{IntervalVal(26, 30), IntervalVal(25, 35), true},
		{IntervalVal(20, 30), IntervalVal(25, 35), false},
		{StrVal("13053"), PrefixVal("1305", 1), true},
		{StrVal("13063"), PrefixVal("1305", 1), false},
		{StrVal("130530"), PrefixVal("1305", 1), false}, // wrong length
		{NumVal(13053), PrefixVal("1305", 1), true},     // numeric zip vs prefix
		{PrefixVal("1305", 1), PrefixVal("130", 2), true},
		{PrefixVal("130", 2), PrefixVal("1305", 1), false},
		{StrVal("a"), StrVal("a"), true},
		{StrVal("a"), StrVal("b"), false},
		{SetVal("Married"), SetVal("Married"), true},
		{StrVal("CF-Spouse"), SetVal("Married"), false}, // taxonomy coverage is package hierarchy's job
	}
	for _, c := range cases {
		if got := c.v.Covers(c.g); got != c.want {
			t.Errorf("%v.Covers(%v) = %v, want %v", c.v, c.g, got, c.want)
		}
	}
}

func TestValueCoversIsReflexiveForIntervalsQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		iv := IntervalVal(a, b)
		return iv.Covers(iv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStarCoversEverythingQuick(t *testing.T) {
	f := func(n float64, s string) bool {
		return StarVal().Covers(NumVal(n)) && StarVal().Covers(StrVal(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalCoverageTransitiveQuick(t *testing.T) {
	// if big covers mid and mid covers x, then big covers x
	f := func(a, b, c, d, x float64) bool {
		for _, v := range []float64{a, b, c, d, x} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		big := IntervalVal(math.Min(a, c), math.Max(b, d))
		mid := IntervalVal(c, d)
		if !big.Covers(mid) {
			return true
		}
		g := NumVal(x)
		if !mid.Covers(g) {
			return true
		}
		return big.Covers(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStringParsesBack(t *testing.T) {
	// String() of generalized values must round-trip through ParseValue.
	vals := []struct {
		v    Value
		kind AttrKind
	}{
		{NumVal(42), Numeric},
		{IntervalVal(25, 35), Numeric},
		{PrefixVal("1305", 1), Categorical},
		{StarVal(), Categorical},
		{StrVal("Divorced"), Categorical},
	}
	for _, c := range vals {
		got, err := ParseValue(c.v.String(), c.kind)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", c.v.String(), err)
		}
		if !got.Equal(c.v) {
			t.Errorf("round trip %v -> %q -> %v", c.v, c.v.String(), got)
		}
	}
}

func TestFloatPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StrVal("x").Float()
}

func TestBoundsPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NumVal(1).Bounds()
}

func TestTextPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NumVal(1).Text()
}

func TestKindString(t *testing.T) {
	for k, want := range map[ValueKind]string{
		Missing: "missing", Num: "num", Str: "str", Interval: "interval",
		Prefix: "prefix", Set: "set", Star: "star", ValueKind(99): "ValueKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("ValueKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if !strings.Contains(ValueKind(200).String(), "200") {
		t.Error("unknown kind should include numeric code")
	}
}
