package dataset

import (
	"strings"
	"testing"
)

// quotedCSV exercises every chunk-hostile construct: quoted commas, escaped
// quotes, embedded newlines (both \n and \r\n), \r\n record terminators and
// a quoted interval.
const quotedCSV = "ZipCode,Age,MaritalStatus\r\n" +
	"13053,28,\"CF-Spouse\"\n" +
	"\"13268\",41,\"Sep,arated\"\r\n" +
	"1305*,\"(25,35]\",\"quote\"\"inside\"\n" +
	"\n" +
	"*,*,*"

func ingestChunks(t *testing.T, schema *Schema, in string, chunk int) (*Table, error) {
	t.Helper()
	g := NewCSVIngester(schema)
	for i := 0; i < len(in); i += chunk {
		end := i + chunk
		if end > len(in) {
			end = len(in)
		}
		if _, err := g.Write([]byte(in[i:end])); err != nil {
			return nil, err
		}
	}
	if err := g.Close(); err != nil {
		return nil, err
	}
	return g.Table(), nil
}

func TestCSVIngesterMatchesReadCSV(t *testing.T) {
	for _, in := range []string{demoCSV, quotedCSV} {
		want, werr := ReadCSV(strings.NewReader(in), demoSchema(t))
		got, gerr := ingestChunks(t, demoSchema(t), in, len(in))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error disagreement: ReadCSV=%v ingester=%v", werr, gerr)
		}
		if werr != nil {
			continue
		}
		if got.Len() != want.Len() {
			t.Fatalf("Len %d != %d", got.Len(), want.Len())
		}
		for i := range want.Rows {
			for j := range want.Rows[i] {
				if g, w := got.At(i, j).Key(), want.At(i, j).Key(); g != w {
					t.Errorf("cell (%d,%d): %q != %q", i, j, g, w)
				}
			}
		}
	}
}

func TestCSVIngesterChunkBoundaryInvariance(t *testing.T) {
	whole, err := ingestChunks(t, demoSchema(t), quotedCSV, len(quotedCSV))
	if err != nil {
		t.Fatal(err)
	}
	// Every chunk size, including 1 byte, must parse identically — chunk
	// boundaries land inside quotes, escapes, \r\n pairs and records.
	for chunk := 1; chunk <= 16; chunk++ {
		got, err := ingestChunks(t, demoSchema(t), quotedCSV, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if got.Len() != whole.Len() {
			t.Fatalf("chunk=%d: Len %d != %d", chunk, got.Len(), whole.Len())
		}
		for i := range whole.Rows {
			for j := range whole.Rows[i] {
				if g, w := got.At(i, j).Key(), whole.At(i, j).Key(); g != w {
					t.Errorf("chunk=%d cell (%d,%d): %q != %q", chunk, i, j, g, w)
				}
			}
		}
	}
}

func TestCSVIngesterErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"wrong header", "Zip,Age,MaritalStatus\n13053,28,x\n"},
		{"bad number", "ZipCode,Age,MaritalStatus\n13053,abc,x\n"},
		{"short row", "ZipCode,Age,MaritalStatus\n13053,28\n"},
		{"bare quote", "ZipCode,Age,MaritalStatus\n13\"053,28,x\n"},
		{"unterminated quote", "ZipCode,Age,MaritalStatus\n\"13053,28,x\n"},
		{"extra after quote", "ZipCode,Age,MaritalStatus\n\"13053\"z,28,x\n"},
		{"no header", ""},
	}
	for _, c := range cases {
		g := NewCSVIngester(demoSchema(t))
		_, werr := g.Write([]byte(c.in))
		cerr := g.Close()
		if werr == nil && cerr == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCSVIngesterWriteAfterClose(t *testing.T) {
	g := NewCSVIngester(demoSchema(t))
	if _, err := g.Write([]byte("ZipCode,Age,MaritalStatus\n")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("13053,28,x\n")); err == nil {
		t.Fatal("expected write-after-Close error")
	}
}
