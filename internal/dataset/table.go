package dataset

import (
	"fmt"
	"strings"
	"sync"
)

// Role classifies how an attribute participates in disclosure control.
type Role uint8

const (
	// Insensitive attributes are neither quasi-identifying nor sensitive.
	Insensitive Role = iota
	// QuasiIdentifier attributes can link a tuple to an external source
	// and are the ones generalized by anonymization algorithms.
	QuasiIdentifier
	// Sensitive attributes carry the private information (disease,
	// salary, marital status in the paper's running example).
	Sensitive
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Insensitive:
		return "insensitive"
	case QuasiIdentifier:
		return "quasi-identifier"
	case Sensitive:
		return "sensitive"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// AttrKind is the ground domain of an attribute.
type AttrKind uint8

const (
	// Categorical attributes hold string values generalized through a
	// taxonomy (or by suppression).
	Categorical AttrKind = iota
	// Numeric attributes hold numbers generalized into intervals.
	Numeric
)

// String returns the kind name.
func (k AttrKind) String() string {
	if k == Numeric {
		return "numeric"
	}
	return "categorical"
}

// Attribute describes one column of a microdata table.
type Attribute struct {
	Name string
	Kind AttrKind
	Role Role
}

// Schema is an ordered list of attributes.
type Schema struct {
	Attrs []Attribute
	// byName memoizes attribute name -> index. NewSchema builds it; Index
	// falls back to a linear scan for literal-constructed schemas or after
	// Attrs is resized by hand.
	byName map[string]int
}

// NewSchema builds a schema from the given attributes, rejecting duplicate
// or empty names.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute with empty name")
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", a.Name)
		}
		byName[a.Name] = i
	}
	return &Schema{Attrs: attrs, byName: byName}, nil
}

// MustSchema is NewSchema that panics on error; intended for fixtures and
// tests where the schema is a literal.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.Attrs) }

// Index returns the position of the named attribute, or -1. Schemas built
// by NewSchema/MustSchema answer from a memoized map; Index used to sit
// inside per-row loops via ColumnByName callers, where the O(attrs) scan
// compounded.
func (s *Schema) Index(name string) int {
	if len(s.byName) == len(s.Attrs) {
		if i, ok := s.byName[name]; ok {
			return i
		}
		return -1
	}
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Attr returns the named attribute.
func (s *Schema) Attr(name string) (Attribute, bool) {
	if i := s.Index(name); i >= 0 {
		return s.Attrs[i], true
	}
	return Attribute{}, false
}

// QuasiIdentifiers returns the indices of quasi-identifier attributes in
// schema order.
func (s *Schema) QuasiIdentifiers() []int {
	var qi []int
	for i, a := range s.Attrs {
		if a.Role == QuasiIdentifier {
			qi = append(qi, i)
		}
	}
	return qi
}

// SensitiveIndex returns the index of the first sensitive attribute, or -1.
func (s *Schema) SensitiveIndex() int {
	for i, a := range s.Attrs {
		if a.Role == Sensitive {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	attrs := make([]Attribute, len(s.Attrs))
	copy(attrs, s.Attrs)
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		byName[a.Name] = i
	}
	return &Schema{Attrs: attrs, byName: byName}
}

// Table is a microdata table: a schema plus N rows of cells. Tables are
// mutable; anonymization algorithms operate on copies (see Clone) so the
// original data set stays available for property measurement.
//
// A Table may carry a lazily built columnar backing (see Columnar): the
// dictionary-encoded view the vectorized hot paths run on. The backing is
// dropped automatically by Append and never copied by Clone; code that
// rewrites cells of t.Rows in place must call InvalidateColumns afterwards
// (every mutator in this module does), otherwise the columnar view goes
// stale undetected.
type Table struct {
	Schema *Schema
	Rows   [][]Value

	colMu   sync.Mutex
	cols    *Columnar
	numCols map[int]*Float64Column // typed-column cache for backing-less tables
}

// NewTable returns an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{Schema: schema}
}

// Append adds a row after validating its width.
func (t *Table) Append(row []Value) error {
	if len(row) != t.Schema.Len() {
		return fmt.Errorf("dataset: row has %d cells, schema has %d attributes", len(row), t.Schema.Len())
	}
	t.Rows = append(t.Rows, row)
	t.InvalidateColumns()
	return nil
}

// MustAppend is Append that panics on error, for fixtures.
func (t *Table) MustAppend(row ...Value) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the number of rows (the paper's N).
func (t *Table) Len() int { return len(t.Rows) }

// At returns the cell at row i, column j.
func (t *Table) At(i, j int) Value { return t.Rows[i][j] }

// InvalidateColumns drops the cached columnar backing. Call after
// rewriting cells of Rows in place; Append and Clone handle themselves.
func (t *Table) InvalidateColumns() {
	t.colMu.Lock()
	t.cols = nil
	t.numCols = nil
	t.colMu.Unlock()
}

// Columnar returns the dictionary-encoded columnar view of the table,
// built at most once and cached (safe for concurrent use). Tables
// materialized from a Columnar (streaming CSV ingest, the generator) carry
// their backing from birth, so the call is free there.
func (t *Table) Columnar() *Columnar {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.cols != nil && t.cols.rows == len(t.Rows) {
		return t.cols
	}
	c := NewColumnar(t.Schema)
	for _, row := range t.Rows {
		for j, v := range row {
			c.cols[j].Append(v)
		}
	}
	c.rows = len(t.Rows)
	t.cols = c
	return c
}

// backing returns the cached columnar view only when it is present and
// consistent with the current row count; it never builds one.
func (t *Table) backing() *Columnar {
	t.colMu.Lock()
	defer t.colMu.Unlock()
	if t.cols != nil && t.cols.rows == len(t.Rows) {
		return t.cols
	}
	return nil
}

// ColumnVector returns column j as a dictionary-encoded Column, served
// from the columnar backing (building and caching it on first use).
func (t *Table) ColumnVector(j int) *Column { return t.Columnar().Col(j) }

// Column returns column j as a []Value. For tables with a columnar
// backing this is the backing's cached view — no copy, treat it as
// read-only; for plain tables it is a fresh copy.
func (t *Table) Column(j int) []Value {
	if bc := t.backing(); bc != nil {
		return bc.Col(j).Values()
	}
	col := make([]Value, len(t.Rows))
	for i, r := range t.Rows {
		col[i] = r[j]
	}
	return col
}

// Float64Column returns column j as a typed, non-dictionary Float64Column
// — the fast path for high-cardinality numeric attributes — built at most
// once and cached; ok is false unless every cell is an exact Num. Tables
// with a columnar backing expand the dictionary payload; plain tables scan
// rows directly, skipping dictionary encoding entirely. The typed column
// is shared; treat it as read-only. InvalidateColumns drops the cache
// along with the columnar backing.
func (t *Table) Float64Column(j int) (*Float64Column, bool) {
	if bc := t.backing(); bc != nil {
		return bc.Col(j).Float64View()
	}
	t.colMu.Lock()
	if fc, ok := t.numCols[j]; ok {
		t.colMu.Unlock()
		return fc, fc != nil
	}
	t.colMu.Unlock()
	var fc *Float64Column
	vals := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		if r[j].Kind() != Num {
			vals = nil
			break
		}
		vals[i] = r[j].Float()
	}
	if vals != nil {
		fc = Float64ColumnOf(vals)
	}
	t.colMu.Lock()
	if t.numCols == nil {
		t.numCols = make(map[int]*Float64Column)
	}
	t.numCols[j] = fc
	t.colMu.Unlock()
	return fc, fc != nil
}

// ColumnByName returns a copy of the named column.
func (t *Table) ColumnByName(name string) ([]Value, error) {
	j := t.Schema.Index(name)
	if j < 0 {
		return nil, fmt.Errorf("dataset: no attribute %q", name)
	}
	return t.Column(j), nil
}

// Clone returns a deep copy of the table. Rows are copied; Values are
// immutable so cells are shared structurally.
func (t *Table) Clone() *Table {
	rows := make([][]Value, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = make([]Value, len(r))
		copy(rows[i], r)
	}
	return &Table{Schema: t.Schema.Clone(), Rows: rows}
}

// DistinctCount returns the number of distinct values (by Key) in column j.
func (t *Table) DistinctCount(j int) int {
	if bc := t.backing(); bc != nil {
		return bc.Col(j).Card()
	}
	seen := make(map[string]struct{}, len(t.Rows))
	for _, r := range t.Rows {
		seen[r[j].Key()] = struct{}{}
	}
	return len(seen)
}

// NumericRange returns the min and max of a Numeric column over exact
// values. Interval cells contribute their bounds. It returns ok=false if
// the column holds no numeric information.
func (t *Table) NumericRange(j int) (lo, hi float64, ok bool) {
	if bc := t.backing(); bc != nil {
		if col := bc.Col(j); col.IsNumeric() {
			// Purely numeric column: the range is a scan over the (small)
			// dictionary payload, independent of the row count.
			for d, f := range col.NumericDict() {
				if d == 0 || f < lo {
					lo = f
				}
				if d == 0 || f > hi {
					hi = f
				}
			}
			return lo, hi, true
		}
	}
	t.colMu.Lock()
	fc := t.numCols[j]
	t.colMu.Unlock()
	if fc != nil {
		// A typed column was already materialized for this attribute: the
		// range is its sharded MinMax kernel.
		return fc.MinMax()
	}
	first := true
	for _, r := range t.Rows {
		var l, h float64
		switch r[j].Kind() {
		case Num:
			l, h = r[j].Float(), r[j].Float()
		case Interval:
			l, h = r[j].Bounds()
		default:
			continue
		}
		if first {
			lo, hi, first = l, h, false
			continue
		}
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	return lo, hi, !first
}

// Format renders the table as an aligned text table in the style the paper
// uses, with a row-index column when index is true.
func (t *Table) Format(index bool) string {
	var b strings.Builder
	ncol := t.Schema.Len()
	widths := make([]int, ncol)
	header := make([]string, ncol)
	for j, a := range t.Schema.Attrs {
		header[j] = a.Name
		widths[j] = len(a.Name)
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, ncol)
		for j, v := range r {
			s := v.String()
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	idxW := len(fmt.Sprint(len(t.Rows)))
	writeRow := func(idx string, row []string) {
		if index {
			fmt.Fprintf(&b, "%*s  ", idxW, idx)
		}
		for j, s := range row {
			fmt.Fprintf(&b, "%-*s", widths[j], s)
			if j < ncol-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	writeRow("", header)
	for i := range cells {
		writeRow(fmt.Sprint(i+1), cells[i])
	}
	return b.String()
}
