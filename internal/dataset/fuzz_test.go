package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseValue checks that arbitrary field text either fails cleanly or
// produces a value whose rendering parses back to the same value.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{
		"28", "3.5", "-7", "(25,35]", "(", "(]", "(25]", "(25,35)", "(a,b]",
		"1305*", "13***", "*", "**", "?", "", "hello", "CF-Spouse",
		"(1e300,1e301]", "(-5,-2]", "nan", "NaN", "Inf", "(NaN,1]",
	} {
		f.Add(seed, true)
		f.Add(seed, false)
	}
	f.Fuzz(func(t *testing.T, s string, numeric bool) {
		kind := Categorical
		if numeric {
			kind = Numeric
		}
		v, err := ParseValue(s, kind)
		if err != nil {
			return
		}
		rendered := v.String()
		back, err := ParseValue(rendered, kind)
		if err != nil {
			t.Fatalf("rendering %q of input %q does not parse: %v", rendered, s, err)
		}
		// Str/Set converge after rendering; compare the stable form.
		if back.String() != rendered {
			t.Fatalf("round trip unstable: %q -> %q -> %q", s, rendered, back.String())
		}
		if v.Kind() == Interval {
			lo, hi := v.Bounds()
			if hi < lo {
				t.Fatalf("parsed interval with hi < lo from %q", s)
			}
		}
	})
}

// FuzzCSVIngesterChunks checks that the chunk-tolerant ingester parses any
// input identically regardless of where the chunk boundaries fall: feeding
// the bytes in `chunk`-sized pieces must produce the same table — or the
// same error/no-error outcome — as feeding them all at once.
func FuzzCSVIngesterChunks(f *testing.F) {
	header := "ZipCode,Age,MaritalStatus\n"
	for _, body := range []string{
		"13053,28,CF-Spouse\n",
		"1305*,\"(25,35]\",Married\n*,*,*\n",
		"\"13268\",41,\"Sep,arated\"\r\n",
		"13053,28,\"quote\"\"inside\"\n",
		"13053,28,\"line\nbreak\"\n",
		"13053,28,\"crlf\r\nbreak\"\r\n",
		"\n\n13053,28,x",
		"13\"053,28,x\n",
		"\"13053,28,x\n",
		"\"13053\"z,28,x\n",
	} {
		f.Add(header+body, 1)
		f.Add(header+body, 3)
		f.Add(header+body, 7)
	}
	f.Fuzz(func(t *testing.T, in string, chunk int) {
		if chunk < 1 || chunk > len(in)+1 {
			return
		}
		schema := MustSchema(
			Attribute{Name: "ZipCode", Kind: Categorical, Role: QuasiIdentifier},
			Attribute{Name: "Age", Kind: Numeric, Role: QuasiIdentifier},
			Attribute{Name: "MaritalStatus", Kind: Categorical, Role: Sensitive},
		)
		whole := NewCSVIngester(schema)
		_, werr := whole.Write([]byte(in))
		if werr == nil {
			werr = whole.Close()
		}
		chunked := NewCSVIngester(schema)
		var cerr error
		for i := 0; i < len(in) && cerr == nil; i += chunk {
			end := i + chunk
			if end > len(in) {
				end = len(in)
			}
			_, cerr = chunked.Write([]byte(in[i:end]))
		}
		if cerr == nil {
			cerr = chunked.Close()
		}
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("chunk=%d: outcome diverged: whole=%v chunked=%v", chunk, werr, cerr)
		}
		if werr != nil {
			return
		}
		a, b := whole.Table(), chunked.Table()
		if a.Len() != b.Len() {
			t.Fatalf("chunk=%d: %d rows != %d rows", chunk, a.Len(), b.Len())
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if x, y := a.At(i, j).Key(), b.At(i, j).Key(); x != y {
					t.Fatalf("chunk=%d cell (%d,%d): %q != %q", chunk, i, j, x, y)
				}
			}
		}
	})
}

// FuzzCSVRoundTrip checks Write∘Read stability for tables built from
// arbitrary cell text.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add("13053", "28", "Divorced")
	f.Add("1305*", "(25,35]", "*")
	f.Add("a,b", "1", "quote\"field")
	f.Add("line\nbreak", "2", "tab\tfield")
	f.Fuzz(func(t *testing.T, zip, age, marital string) {
		schema := MustSchema(
			Attribute{Name: "ZipCode", Kind: Categorical, Role: QuasiIdentifier},
			Attribute{Name: "Age", Kind: Numeric, Role: QuasiIdentifier},
			Attribute{Name: "MaritalStatus", Kind: Categorical, Role: Sensitive},
		)
		zv, err1 := ParseValue(strings.TrimSpace(zip), Categorical)
		av, err2 := ParseValue(strings.TrimSpace(age), Numeric)
		mv, err3 := ParseValue(strings.TrimSpace(marital), Categorical)
		if err1 != nil || err2 != nil || err3 != nil {
			return
		}
		// Rendering must not collide with CSV structure after encoding.
		tab := NewTable(schema)
		tab.MustAppend(zv, av, mv)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tab); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := ReadCSV(&buf, schema)
		if err != nil {
			// Rendered forms containing leading/trailing spaces or other
			// CSV-hostile shapes may legitimately fail to re-parse (the
			// reader trims); only structural corruption is a bug.
			return
		}
		if back.Len() != 1 {
			t.Fatalf("round trip changed row count to %d", back.Len())
		}
		for j := 0; j < 3; j++ {
			if got, want := back.At(0, j).String(), tab.At(0, j).String(); got != want {
				t.Fatalf("cell %d: %q != %q", j, got, want)
			}
		}
	})
}
