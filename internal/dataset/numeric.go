// Typed numeric columns: the non-dictionary fast path for high-cardinality
// numeric attributes. A dictionary-encoded Column pays one map probe and
// one dictionary slot per DISTINCT value — ideal for categorical and
// generalized data, wasteful for a measurement column where most values
// are unique. Float64Column and Int64Column store the column as a flat
// typed vector instead, and their reduction kernels (min/max/sum) shard
// the scan across workers over fixed-size row morsels, so whole-attribute
// statistics (utility loss domains, summary digests, the rank vectors the
// permutation-paradigm measures need) stay tractable at the 10M-row scale.
//
// Concurrency contract (same as Column): a typed column has a SINGLE
// writer while it is being built (Append/Grow) and becomes safe for any
// number of concurrent readers once building stops. None of the kernels
// mutate the column; they may run concurrently with each other but not
// with Append.
package dataset

import (
	"math"
	"sort"

	"microdata/internal/kernels"
)

// Float64Column is a flat float64 column vector.
type Float64Column struct {
	vals []float64
}

// NewFloat64Column returns an empty typed column with capacity for n rows.
func NewFloat64Column(n int) *Float64Column {
	return &Float64Column{vals: make([]float64, 0, n)}
}

// Float64ColumnOf wraps an existing vector (taking ownership) as a typed
// column.
func Float64ColumnOf(vals []float64) *Float64Column { return &Float64Column{vals: vals} }

// Len returns the number of rows.
func (c *Float64Column) Len() int { return len(c.vals) }

// Append adds one value. Single-writer: never call concurrently with any
// other method.
func (c *Float64Column) Append(v float64) { c.vals = append(c.vals, v) }

// Grow reserves capacity for n more rows.
func (c *Float64Column) Grow(n int) {
	if n <= cap(c.vals)-len(c.vals) {
		return
	}
	need := len(c.vals) + n
	newcap := cap(c.vals) + cap(c.vals)/2
	if newcap < need {
		newcap = need
	}
	vals := make([]float64, len(c.vals), newcap)
	copy(vals, c.vals)
	c.vals = vals
}

// Values returns the backing vector. The slice is shared; treat it as
// read-only.
func (c *Float64Column) Values() []float64 { return c.vals }

// At returns row i's value.
func (c *Float64Column) At(i int) float64 { return c.vals[i] }

// MinMax returns the column's minimum and maximum, sharding the scan
// across workers for large columns; ok is false for an empty column. NaN
// elements are ignored (a column of only NaNs reports ok=false).
func (c *Float64Column) MinMax() (lo, hi float64, ok bool) {
	n := len(c.vals)
	if n == 0 {
		return 0, 0, false
	}
	nShards := kernels.Shards(n, 0)
	los := make([]float64, nShards)
	his := make([]float64, nShards)
	oks := make([]bool, nShards)
	kernels.ParallelFor(nShards, func(s int) {
		l, h := kernels.ShardRange(n, nShards, s)
		slo, shi := math.Inf(1), math.Inf(-1)
		for _, v := range c.vals[l:h] {
			if v < slo {
				slo = v
			}
			if v > shi {
				shi = v
			}
		}
		los[s], his[s], oks[s] = slo, shi, shi >= slo
	})
	lo, hi = math.Inf(1), math.Inf(-1)
	for s := 0; s < nShards; s++ {
		if !oks[s] {
			continue
		}
		ok = true
		if los[s] < lo {
			lo = los[s]
		}
		if his[s] > hi {
			hi = his[s]
		}
	}
	if !ok {
		return 0, 0, false
	}
	return lo, hi, true
}

// Min returns the minimum (ok=false when empty or all-NaN).
func (c *Float64Column) Min() (float64, bool) {
	lo, _, ok := c.MinMax()
	return lo, ok
}

// Max returns the maximum (ok=false when empty or all-NaN).
func (c *Float64Column) Max() (float64, bool) {
	_, hi, ok := c.MinMax()
	return hi, ok
}

// Sum returns the column total. Partial sums are computed per fixed-size
// morsel and folded in morsel order, so the float64 result is identical
// for every worker count — parallelism never changes the answer.
func (c *Float64Column) Sum() float64 {
	n := len(c.vals)
	if n == 0 {
		return 0
	}
	morsels := (n + kernels.MorselRows - 1) / kernels.MorselRows
	if morsels == 1 {
		return sumFloats(c.vals)
	}
	partials := make([]float64, morsels)
	nShards := kernels.Shards(n, 0)
	kernels.ParallelFor(nShards, func(s int) {
		lo, hi := kernels.ShardRange(n, nShards, s)
		for m := lo / kernels.MorselRows; m*kernels.MorselRows < hi; m++ {
			end := (m + 1) * kernels.MorselRows
			if end > hi {
				end = hi
			}
			partials[m] = sumFloats(c.vals[m*kernels.MorselRows : end])
		}
	})
	sum := 0.0
	for _, p := range partials {
		sum += p
	}
	return sum
}

func sumFloats(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean (ok=false when empty).
func (c *Float64Column) Mean() (float64, bool) {
	if len(c.vals) == 0 {
		return 0, false
	}
	return c.Sum() / float64(len(c.vals)), true
}

// Ranks returns the 1-based fractional ranks of the column: element i is
// the average position value i would occupy in the sorted column, with
// ties sharing the mean of their positions (the standard fractional
// ranking the permutation-paradigm disclosure measures are defined over).
// For (10, 20, 20, 30) the ranks are (1, 2.5, 2.5, 4).
func (c *Float64Column) Ranks() []float64 {
	n := len(c.vals)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return c.vals[order[a]] < c.vals[order[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && c.vals[order[j]] == c.vals[order[i]] {
			j++
		}
		// positions i..j-1 (0-based) share the average 1-based rank.
		r := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[order[k]] = r
		}
		i = j
	}
	return ranks
}

// Int64Column is a flat int64 column vector: the exact-integer sibling of
// Float64Column for count-like attributes, whose Sum never loses
// precision to float rounding.
type Int64Column struct {
	vals []int64
}

// NewInt64Column returns an empty typed column with capacity for n rows.
func NewInt64Column(n int) *Int64Column {
	return &Int64Column{vals: make([]int64, 0, n)}
}

// Int64ColumnOf wraps an existing vector (taking ownership).
func Int64ColumnOf(vals []int64) *Int64Column { return &Int64Column{vals: vals} }

// Len returns the number of rows.
func (c *Int64Column) Len() int { return len(c.vals) }

// Append adds one value. Single-writer: never call concurrently with any
// other method.
func (c *Int64Column) Append(v int64) { c.vals = append(c.vals, v) }

// Values returns the backing vector. The slice is shared; treat it as
// read-only.
func (c *Int64Column) Values() []int64 { return c.vals }

// At returns row i's value.
func (c *Int64Column) At(i int) int64 { return c.vals[i] }

// MinMax returns the column's minimum and maximum, sharded across workers;
// ok is false for an empty column.
func (c *Int64Column) MinMax() (lo, hi int64, ok bool) {
	n := len(c.vals)
	if n == 0 {
		return 0, 0, false
	}
	nShards := kernels.Shards(n, 0)
	los := make([]int64, nShards)
	his := make([]int64, nShards)
	kernels.ParallelFor(nShards, func(s int) {
		l, h := kernels.ShardRange(n, nShards, s)
		slo, shi := c.vals[l], c.vals[l]
		for _, v := range c.vals[l+1 : h] {
			if v < slo {
				slo = v
			}
			if v > shi {
				shi = v
			}
		}
		los[s], his[s] = slo, shi
	})
	lo, hi = los[0], his[0]
	for s := 1; s < nShards; s++ {
		if los[s] < lo {
			lo = los[s]
		}
		if his[s] > hi {
			hi = his[s]
		}
	}
	return lo, hi, true
}

// Sum returns the exact integer total (wrapping on int64 overflow, like
// any Go integer sum). Order-independent, so sharding is free.
func (c *Int64Column) Sum() int64 {
	n := len(c.vals)
	nShards := kernels.Shards(n, 0)
	if nShards <= 1 {
		var sum int64
		for _, v := range c.vals {
			sum += v
		}
		return sum
	}
	partials := make([]int64, nShards)
	kernels.ParallelFor(nShards, func(s int) {
		lo, hi := kernels.ShardRange(n, nShards, s)
		var sum int64
		for _, v := range c.vals[lo:hi] {
			sum += v
		}
		partials[s] = sum
	})
	var sum int64
	for _, p := range partials {
		sum += p
	}
	return sum
}

// Float64 converts to a Float64Column (copying), for kernels defined over
// floats (Ranks, Mean).
func (c *Int64Column) Float64() *Float64Column {
	vals := make([]float64, len(c.vals))
	for i, v := range c.vals {
		vals[i] = float64(v)
	}
	return Float64ColumnOf(vals)
}
