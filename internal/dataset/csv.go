package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a CSV stream whose header must match the schema's attribute
// names in order. Numeric columns are parsed as floats; a bare "*" parses as
// the suppressed value; "(lo,hi]" parses as an interval; a trailing run of
// '*' after a non-empty prefix parses as a Prefix value. Everything else in a
// categorical column is an exact string.
//
// Ingest is columnar: cells stream straight into dictionary-encoded
// columns and the row-oriented Rows view is materialized once at the end,
// already carrying its columnar backing.
func ReadCSV(r io.Reader, schema *Schema) (*Table, error) {
	c, err := ReadCSVColumnar(r, schema)
	if err != nil {
		return nil, err
	}
	return c.Table(), nil
}

// ReadCSVColumnar is ReadCSV without the row materialization: it streams
// records into a Columnar table, never holding more than one CSV record of
// row-oriented state. This is the ingest path for workloads that stay on
// the columnar substrate.
func ReadCSVColumnar(r io.Reader, schema *Schema) (*Columnar, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.Len()
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for j, a := range schema.Attrs {
		if strings.TrimSpace(header[j]) != a.Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q", j, header[j], a.Name)
		}
	}
	c := NewColumnar(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		for j, field := range rec {
			v, err := ParseValue(strings.TrimSpace(field), schema.Attrs[j].Kind)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d, column %q: %w", line, schema.Attrs[j].Name, err)
			}
			c.appendCell(j, v)
		}
		c.rows++
	}
	return c, nil
}

// ParseValue parses one CSV field according to the attribute kind. See
// ReadCSV for the accepted syntax.
func ParseValue(s string, kind AttrKind) (Value, error) {
	if s == "*" {
		return StarVal(), nil
	}
	if s == "" || s == "?" {
		return Value{}, fmt.Errorf("missing value %q", s)
	}
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, "]") {
		body := s[1 : len(s)-1]
		parts := strings.SplitN(body, ",", 2)
		if len(parts) != 2 {
			return Value{}, fmt.Errorf("malformed interval %q", s)
		}
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return Value{}, fmt.Errorf("malformed interval %q", s)
		}
		if hi < lo {
			return Value{}, fmt.Errorf("interval %q has hi < lo", s)
		}
		return IntervalVal(lo, hi), nil
	}
	if n := len(s) - len(strings.TrimRight(s, "*")); n > 0 {
		prefix := s[:len(s)-n]
		if prefix == "" {
			return StarVal(), nil
		}
		return PrefixVal(prefix, n), nil
	}
	if kind == Numeric {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("malformed number %q", s)
		}
		return NumVal(f), nil
	}
	return StrVal(s), nil
}

// WriteCSV writes the table with a header row, rendering cells with
// Value.String so that ReadCSV round-trips generalized values.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.Len())
	for j, a := range t.Schema.Attrs {
		header[j] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, t.Schema.Len())
	for _, row := range t.Rows {
		for j, v := range row {
			rec[j] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
