package dataset

import (
	"bytes"
	"strings"
	"testing"
)

const demoCSV = `ZipCode,Age,MaritalStatus
13053,28,CF-Spouse
13268,41,Separated
1305*,"(25,35]",Married
*,*,*
`

func TestReadCSV(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(demoCSV), demoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if got := tab.At(0, 1); !got.Equal(NumVal(28)) {
		t.Errorf("row 0 age = %v", got)
	}
	if got := tab.At(2, 0); !got.Equal(PrefixVal("1305", 1)) {
		t.Errorf("row 2 zip = %v", got)
	}
	if got := tab.At(2, 1); !got.Equal(IntervalVal(25, 35)) {
		t.Errorf("row 2 age = %v", got)
	}
	if got := tab.At(3, 2); !got.IsSuppressed() {
		t.Errorf("row 3 marital = %v", got)
	}
	// Categorical generalized values read back as Str (not Set): the CSV
	// codec cannot know the taxonomy, and Str/Set with equal text compare
	// equal by Key only within their kind. Document the actual behaviour:
	if got := tab.At(2, 2); got.Kind() != Str || got.Text() != "Married" {
		t.Errorf("row 2 marital = %v (%v)", got, got.Kind())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"wrong header", "Zip,Age,MaritalStatus\n13053,28,x\n"},
		{"bad number", "ZipCode,Age,MaritalStatus\n13053,abc,x\n"},
		{"bad interval", "ZipCode,Age,MaritalStatus\n13053,\"(25]\",x\n"},
		{"reversed interval", "ZipCode,Age,MaritalStatus\n13053,\"(35,25]\",x\n"},
		{"missing value", "ZipCode,Age,MaritalStatus\n,28,x\n"},
		{"short row", "ZipCode,Age,MaritalStatus\n13053,28\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), demoSchema(t)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(demoCSV), demoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, demoSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip changed length: %d != %d", back.Len(), orig.Len())
	}
	for i := range orig.Rows {
		for j := range orig.Rows[i] {
			a, b := orig.At(i, j), back.At(i, j)
			// Str and Set converge to Str after a round trip; compare
			// by rendered form, which is the stable contract.
			if a.String() != b.String() {
				t.Errorf("cell (%d,%d): %v != %v", i, j, a, b)
			}
		}
	}
}

func TestParseValueStarRuns(t *testing.T) {
	v, err := ParseValue("*****", Categorical)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsSuppressed() {
		t.Fatalf("all-star field should be suppressed, got %v", v)
	}
}
