package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microdata/internal/telemetry/ledger"
	"microdata/internal/telemetry/perf"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// fixedEnv pins every fingerprint field so pack digests — and therefore the
// golden trend document — are fully deterministic.
func fixedEnv() perf.Env {
	return perf.Env{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 1, NumCPU: 1, CPUModel: "Test CPU @ 2.10GHz",
		GitRevision: "deadbeef", DatasetHash: "abc123", Seed: 1, N: 400, K: 5,
	}
}

// writePack seals a deterministic one-benchmark perf pack under dir.
func writePack(t *testing.T, dir string, created int64, env perf.Env, wall float64) string {
	t.Helper()
	p := &perf.Pack{
		Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: 3,
		CreatedUnixMS: created, Env: env,
		Benchmarks: []perf.Benchmark{{
			Name: "synthetic/op",
			Metrics: map[string]perf.Series{
				perf.MetricWallNS:    perf.NewSeries("ns", []float64{wall, wall * 1.01, wall * 0.99}),
				perf.MetricAllocs:    perf.NewSeries("count", []float64{10000, 10000, 10000}),
				perf.MetricHeapBytes: perf.NewSeries("bytes", []float64{1 << 20, 1 << 20, 1 << 20}),
			},
		}},
	}
	path := filepath.Join(dir, fmt.Sprintf("pack-%d.json", created))
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes the anonstat entry point, returning stdout and the error
// carrying the exit code.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

// seedLedger appends packs with the given wall levels (same fixed env,
// creation-stamped 1000, 2000, ...) and returns the ledger dir.
func seedLedger(t *testing.T, walls ...float64) string {
	t.Helper()
	dir := t.TempDir()
	ldir := filepath.Join(dir, "ledger")
	var paths []string
	for i, w := range walls {
		paths = append(paths, writePack(t, dir, int64((i+1)*1000), fixedEnv(), w))
	}
	out, err := runCLI(t, append([]string{"append", "-ledger", ldir}, paths...)...)
	if err != nil {
		t.Fatalf("append: %v\n%s", err, out)
	}
	return ldir
}

func TestAppendLsShow(t *testing.T) {
	ldir := seedLedger(t, 100e6, 110e6)
	l, err := ledger.Open(ldir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Index.Entries) != 2 {
		t.Fatalf("%d entries, want 2", len(l.Index.Entries))
	}
	digest := l.Index.Entries[0].Digest

	out, err := runCLI(t, "ls", "-ledger", ldir)
	if err != nil {
		t.Fatalf("ls: %v", err)
	}
	if !strings.Contains(out, digest[:12]) || !strings.Contains(out, "synthetic") {
		t.Errorf("ls output missing entry:\n%s", out)
	}

	out, err = runCLI(t, "show", "-ledger", ldir, digest[:8])
	if err != nil {
		t.Fatalf("show: %v", err)
	}
	for _, want := range []string{digest, "kind:            perf", "go1.24.0", "synthetic/op"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}

	// Re-append is an idempotent no-op.
	p := writePack(t, t.TempDir(), 1000, fixedEnv(), 100e6)
	out, err = runCLI(t, "append", "-ledger", ldir, p)
	if err != nil {
		t.Fatalf("re-append: %v", err)
	}
	if !strings.Contains(out, "already present") {
		t.Errorf("re-append output:\n%s", out)
	}
}

// TestGateFailsOnDoubledEntry pins the acceptance contract: a ledger whose
// newest entry doubles wall_ns under an unchanged environment exits 5 with
// a path-level diagnostic naming the benchmark and the entry digest.
func TestGateFailsOnDoubledEntry(t *testing.T) {
	ldir := seedLedger(t, 100e6, 100e6, 100e6, 100e6, 200e6)
	l, err := ledger.Open(ldir)
	if err != nil {
		t.Fatal(err)
	}
	newest := l.Index.Entries[len(l.Index.Entries)-1]

	out, err := runCLI(t, "gate", "-ledger", ldir)
	if got := perf.ExitCode(err); got != perf.ExitDrift {
		t.Fatalf("gate on doubled entry: exit %d (%v), want %d\n%s", got, err, perf.ExitDrift, out)
	}
	for _, want := range []string{"perf-drift", "synthetic/op.wall_ns", newest.Digest[:12]} {
		if !strings.Contains(out, want) {
			t.Errorf("gate diagnostic missing %q:\n%s", want, out)
		}
	}
	if err == nil || !strings.Contains(err.Error(), "synthetic/op.wall_ns") {
		t.Errorf("gate error does not name the path: %v", err)
	}
}

// TestGateAttributesEnvOnlyChange pins the flip side: the same doubled
// timing under a different go version exits 0, with the change attributed
// field-by-field instead of failed.
func TestGateAttributesEnvOnlyChange(t *testing.T) {
	dir := t.TempDir()
	ldir := filepath.Join(dir, "ledger")
	var paths []string
	for i, w := range []float64{100e6, 100e6, 100e6} {
		paths = append(paths, writePack(t, dir, int64((i+1)*1000), fixedEnv(), w))
	}
	envB := fixedEnv()
	envB.GoVersion = "go1.25.0"
	paths = append(paths, writePack(t, dir, 4000, envB, 200e6))
	if out, err := runCLI(t, append([]string{"append", "-ledger", ldir}, paths...)...); err != nil {
		t.Fatalf("append: %v\n%s", err, out)
	}

	out, err := runCLI(t, "gate", "-ledger", ldir)
	if err != nil {
		t.Fatalf("gate on env-only change: exit %d (%v), want 0\n%s", perf.ExitCode(err), err, out)
	}
	for _, want := range []string{"attribution", "go_version", "go1.24.0 -> go1.25.0", "verdict: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("gate attribution missing %q:\n%s", want, out)
		}
	}
}

// TestTrendGoldenJSON pins `anonstat trend -json` byte-for-byte: the
// document is derived purely from ledger contents, so the same packs must
// reproduce the same bytes on every machine. Regenerate with -update.
func TestTrendGoldenJSON(t *testing.T) {
	ldir := seedLedger(t, 100e6, 100e6, 100e6, 200e6, 200e6)

	out1, err := runCLI(t, "trend", "-ledger", ldir, "-json")
	if err != nil {
		t.Fatalf("trend -json: %v", err)
	}
	out2, err := runCLI(t, "trend", "-ledger", ldir, "-json")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Error("trend -json is not byte-stable across runs")
	}

	golden := filepath.Join("testdata", "trend_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/anonstat -run TrendGolden -update` to create it)", err)
	}
	if out1 != string(want) {
		t.Errorf("trend -json diverges from golden file\ngot:\n%s\nwant:\n%s", out1, want)
	}
	// The golden trajectory must include the sustained changepoint.
	if !strings.Contains(out1, `"changepoint":`) {
		t.Errorf("golden trend lacks a changepoint:\n%s", out1)
	}
}

func TestTrendTable(t *testing.T) {
	ldir := seedLedger(t, 100e6, 100e6, 100e6, 200e6, 200e6)
	out, err := runCLI(t, "trend", "-ledger", ldir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "synthetic/op") || !strings.Contains(out, "changepoint@") {
		t.Errorf("trend table missing benchmark or changepoint:\n%s", out)
	}
}

func TestExitContract(t *testing.T) {
	if _, err := runCLI(t, "bogus"); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("unknown command: exit %d, want %d", perf.ExitCode(err), perf.ExitInvalid)
	}
	if _, err := runCLI(t, "gate"); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("gate without -ledger: exit %d, want %d", perf.ExitCode(err), perf.ExitInvalid)
	}
	if _, err := runCLI(t); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("no command: exit %d, want %d", perf.ExitCode(err), perf.ExitInvalid)
	}
	if _, err := runCLI(t, "help"); err != nil {
		t.Errorf("help: %v", err)
	}
	// Appending garbage is invalid input, and a tampered pack is a
	// verification failure — distinct codes.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "append", "-ledger", filepath.Join(dir, "l"), bad); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("append garbage: exit %d, want %d", perf.ExitCode(err), perf.ExitInvalid)
	}
	p := writePack(t, dir, 1000, fixedEnv(), 100e6)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, bytes.Replace(raw, []byte("100000000"), []byte("100000001"), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "append", "-ledger", filepath.Join(dir, "l"), p); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("append tampered: exit %d, want %d", perf.ExitCode(err), perf.ExitVerification)
	}
}
