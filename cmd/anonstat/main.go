// Command anonstat maintains and inspects a trajectory ledger: the
// append-only, content-addressed history of sealed perf packs and result
// packs that turns single-run artifacts (cmd/anonbench -bench-out,
// -result-out) into a longitudinal view of the reproduction's performance
// and correctness. See internal/telemetry/ledger and DESIGN.md
// "Trajectory ledger".
//
//	anonstat append -ledger DIR pack.json...   verify + record packs
//	anonstat ls     -ledger DIR                list ledger entries
//	anonstat show   -ledger DIR DIGEST         one entry in detail
//	anonstat trend  -ledger DIR [-json]        per-benchmark time series
//	anonstat gate   -ledger DIR [-json]        rolling drift/correctness gate
//
// Exit codes follow the stable contract shared with anonbench, compare and
// benchdiff:
//
//	0  ok (for gate: no drift findings; env-only changes are attributed,
//	   not failed)
//	1  internal failure
//	2  an artifact failed integrity verification (tampered pack or index)
//	5  the gate found drift: a gated perf metric broke out of its rolling
//	   same-environment envelope, or a result-pack claim changed under an
//	   unchanged environment fingerprint
//	6  invalid input (unknown command, bad flags, non-pack files)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"microdata/internal/telemetry/ledger"
	"microdata/internal/telemetry/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "anonstat:", err)
		os.Exit(perf.ExitCode(err))
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: anonstat <command> [flags] [args]

commands:
  append -ledger DIR pack.json...  verify packs and append them to the ledger
  ls     -ledger DIR               list ledger entries (digest, kind, env, age)
  show   -ledger DIR DIGEST        show one entry (digest prefix accepted)
  trend  -ledger DIR [-json]       per-benchmark time series with sparklines
  gate   -ledger DIR [-json]       rolling drift gate + correctness verdicts

run "anonstat <command> -h" for per-command flags`)
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return perf.Invalidf("no command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "append":
		return cmdAppend(rest, stdout, stderr)
	case "ls":
		return cmdLs(rest, stdout, stderr)
	case "show":
		return cmdShow(rest, stdout, stderr)
	case "trend":
		return cmdTrend(rest, stdout, stderr)
	case "gate":
		return cmdGate(rest, stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return perf.Invalidf("unknown command %q", cmd)
	}
}

// newFlagSet builds a ContinueOnError flag set whose -h output lands on
// stderr, wrapping the parse error as ExitInvalid.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("anonstat "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return perf.Exit(perf.ExitInvalid, err)
	}
	return nil
}

func openLedger(dir string) (*ledger.Ledger, error) {
	if dir == "" {
		return nil, perf.Invalidf("-ledger is required")
	}
	return ledger.Open(dir)
}

func cmdAppend(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("append", stderr)
	dir := fs.String("ledger", "", "ledger directory")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return perf.Invalidf("append: no pack files given")
	}
	l, err := openLedger(*dir)
	if err != nil {
		return err
	}
	for _, path := range fs.Args() {
		entry, added, err := l.AppendFile(path)
		if err != nil {
			return err
		}
		verb := "appended"
		if !added {
			verb = "already present"
		}
		fmt.Fprintf(stdout, "%s: %s %s (%s, %s, env %s)\n",
			path, verb, entry.Digest[:12], entry.Kind, entry.Suite, entry.EnvFingerprint)
	}
	fmt.Fprintf(stdout, "ledger %s: %d entries\n", *dir, len(l.Index.Entries))
	return nil
}

func cmdLs(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("ls", stderr)
	dir := fs.String("ledger", "", "ledger directory")
	if err := parse(fs, args); err != nil {
		return err
	}
	l, err := openLedger(*dir)
	if err != nil {
		return err
	}
	if len(l.Index.Entries) == 0 {
		fmt.Fprintf(stdout, "ledger %s: empty\n", *dir)
		return nil
	}
	fmt.Fprintf(stdout, "%-12s %-6s %-40s %5s %6s %-12s %-10s %s\n",
		"digest", "kind", "suite", "reps", "bench", "env", "commit", "created")
	for _, e := range l.Index.Entries {
		created := time.UnixMilli(e.CreatedUnixMS).UTC().Format("2006-01-02 15:04")
		commit := e.GitRevision
		if len(commit) > 10 {
			commit = commit[:10]
		}
		if commit == "" {
			commit = "-"
		}
		fmt.Fprintf(stdout, "%-12s %-6s %-40s %5d %6d %-12s %-10s %s\n",
			e.Digest[:12], e.Kind, truncate(e.Suite, 40), e.Reps, e.Benchmarks,
			e.EnvFingerprint, commit, created)
	}
	return nil
}

func cmdShow(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("show", stderr)
	dir := fs.String("ledger", "", "ledger directory")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return perf.Invalidf("show: exactly one digest prefix expected (got %d args)", fs.NArg())
	}
	l, err := openLedger(*dir)
	if err != nil {
		return err
	}
	e, err := l.Find(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "digest:          %s\n", e.Digest)
	fmt.Fprintf(stdout, "kind:            %s\n", e.Kind)
	fmt.Fprintf(stdout, "suite:           %s\n", e.Suite)
	fmt.Fprintf(stdout, "created:         %s\n", time.UnixMilli(e.CreatedUnixMS).UTC().Format(time.RFC3339))
	fmt.Fprintf(stdout, "env fingerprint: %s\n", e.EnvFingerprint)
	fmt.Fprintf(stdout, "go version:      %s (%s/%s, GOMAXPROCS %d)\n",
		e.Env.GoVersion, e.Env.GOOS, e.Env.GOARCH, e.Env.GOMAXPROCS)
	fmt.Fprintf(stdout, "cpu:             %s (x%d)\n", orDash(e.Env.CPUModel), e.Env.NumCPU)
	fmt.Fprintf(stdout, "commit:          %s\n", orDash(e.GitRevision))
	fmt.Fprintf(stdout, "dataset:         hash %s, seed %d, n %d, k %d\n",
		orDash(e.Env.DatasetHash), e.Env.Seed, e.Env.N, e.Env.K)
	if e.Kind == ledger.KindPerf {
		pack, err := l.ReadPerf(e.Digest)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchmarks:      %d (reps %d)\n", len(pack.Benchmarks), pack.Reps)
		for _, b := range pack.Benchmarks {
			wall := b.Metrics[perf.MetricWallNS]
			allocs := b.Metrics[perf.MetricAllocs]
			fmt.Fprintf(stdout, "  %-48s wall %12s  allocs %.0f\n",
				b.Name, time.Duration(wall.Median).Round(time.Microsecond), allocs.Median)
		}
	} else {
		pack, err := l.ReadResult(e.Digest)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "sections:        %d algorithm rows, %d attack rows, %d table digests, %d comparisons\n",
			len(pack.Algorithms), len(pack.Attack), len(pack.Tables), len(pack.Comparisons))
	}
	return nil
}

func cmdTrend(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("trend", stderr)
	var (
		dir     = fs.String("ledger", "", "ledger directory")
		bench   = fs.String("bench", "", "keep only benchmarks containing this substring")
		metrics = fs.String("metrics", "", "comma list of metric series to extract (default wall_ns,allocs,heap_bytes)")
		sustain = fs.Int("sustain", 2, "consecutive excursions required for a changepoint")
		rel     = fs.Float64("rel-threshold", 0.25, "relative envelope (fraction of the rolling median)")
		madF    = fs.Float64("mad-factor", 4, "rolling-MAD multiplier widening the envelope")
		last    = fs.Int("last", 0, "use only the newest N perf entries (0 = all)")
		jsonOut = fs.Bool("json", false, "emit the trend as byte-stable canonical JSON on stdout")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	l, err := openLedger(*dir)
	if err != nil {
		return err
	}
	opts := ledger.TrendOptions{
		Envelope:  ledger.Envelope{RelThreshold: *rel, MADFactor: *madF},
		Benchmark: *bench, Sustain: *sustain, Last: *last,
		Metrics: splitList(*metrics),
	}
	t, err := ledger.ExtractTrend(l, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		canon, err := t.MarshalCanonical()
		if err != nil {
			return err
		}
		_, err = stdout.Write(canon)
		return err
	}
	t.WriteTable(stdout)
	return nil
}

func cmdGate(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("gate", stderr)
	var (
		dir        = fs.String("ledger", "", "ledger directory")
		gated      = fs.String("gate", "", "comma list of metrics whose drift fails the gate (default wall_ns,allocs)")
		sustain    = fs.Int("sustain", 1, "newest same-env entries that must all exceed the envelope to fail")
		minHistory = fs.Int("min-history", 2, "same-env history entries required before gating")
		rel        = fs.Float64("rel-threshold", 0.25, "relative envelope (fraction of the rolling median)")
		madF       = fs.Float64("mad-factor", 4, "rolling-MAD multiplier widening the envelope")
		jsonOut    = fs.Bool("json", false, "emit the gate result as canonical JSON on stdout")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	l, err := openLedger(*dir)
	if err != nil {
		return err
	}
	opts := ledger.GateOptions{
		Envelope: ledger.Envelope{RelThreshold: *rel, MADFactor: *madF},
		Gated:    splitList(*gated),
		Sustain:  *sustain, MinHistory: *minHistory,
	}
	res, err := ledger.Gate(l, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		canon, err := res.MarshalCanonical()
		if err != nil {
			return err
		}
		if _, err := stdout.Write(canon); err != nil {
			return err
		}
	} else {
		res.WriteText(stdout)
	}
	if !res.OK() {
		first := res.Findings[0]
		return perf.Exit(perf.ExitDrift, fmt.Errorf("gate failed: %d finding(s), first: %s", len(res.Findings), first.Detail))
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
