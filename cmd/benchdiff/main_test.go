package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"microdata/internal/telemetry/ledger"
	"microdata/internal/telemetry/perf"
)

// writePack seals a one-benchmark pack with the given wall medians and
// writes it under dir.
func writePack(t *testing.T, dir, name string, wall []float64) string {
	t.Helper()
	p := &perf.Pack{
		Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: len(wall),
		Benchmarks: []perf.Benchmark{{
			Name: "synthetic/op",
			Metrics: map[string]perf.Series{
				perf.MetricWallNS: perf.NewSeries("ns", wall),
			},
		}},
	}
	path := filepath.Join(dir, name)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(args ...string) error {
	return realMain(args, 0.25, 4, "", false, false, false, false, "")
}

func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	same := writePack(t, dir, "same.json", []float64{101e6, 99e6, 100e6})
	worse := writePack(t, dir, "worse.json", []float64{200e6, 205e6, 198e6})

	if err := run(base, same); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("identical packs: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
	if err := run(base, worse); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("doubled timings: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
	if err := run(base); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("one arg: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
	if err := run(base, filepath.Join(dir, "missing.json")); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("missing file: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}

	notAPack := filepath.Join(dir, "other.json")
	if err := os.WriteFile(notAPack, []byte(`{"schema":"something-else","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(base, notAPack); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("wrong schema: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}

func TestTamperedPackFailsVerification(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	cur := writePack(t, dir, "cur.json", []float64{101e6, 99e6, 100e6})

	// Hand-edit one timing digit after sealing.
	raw, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(raw, []byte("99000000"), []byte("99000001"), 1)
	if bytes.Equal(edited, raw) {
		t.Fatalf("tamper target not found in %s", raw)
	}
	if err := os.WriteFile(cur, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(base, cur); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	if err := realMain([]string{cur}, 0.25, 4, "", false, true, false, false, ""); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("-verify-only on tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	// -skip-verify waives the seal so the comparator still runs (and the
	// one-digit edit is well inside the envelope).
	if err := realMain([]string{base, cur}, 0.25, 4, "", true, false, false, false, ""); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("-skip-verify on tampered pack: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
}

func TestCustomGate(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, goroutines float64) string {
		p := &perf.Pack{
			Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: 1,
			Benchmarks: []perf.Benchmark{{
				Name: "synthetic/op",
				Metrics: map[string]perf.Series{
					perf.MetricWallNS:     perf.NewSeries("ns", []float64{100e6}),
					perf.MetricGoroutines: perf.NewSeries("count", []float64{goroutines}),
				},
			}},
		}
		path := filepath.Join(dir, name)
		if err := p.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := mk("base.json", 4)
	cur := mk("cur.json", 400)

	// Goroutines are ungated by default: no drift.
	if err := run(base, cur); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("default gate: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
	// Gating on goroutines turns the 100x blowup into drift.
	if err := realMain([]string{base, cur}, 0.25, 4, "goroutines", false, false, false, false, ""); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("-gate goroutines: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
}

// writeEnvPack is writePack with a pinned environment, for ledger-baseline
// fingerprint matching.
func writeEnvPack(t *testing.T, dir, name string, env perf.Env, wall []float64) string {
	t.Helper()
	p := &perf.Pack{
		Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: len(wall), Env: env,
		Benchmarks: []perf.Benchmark{{
			Name: "synthetic/op",
			Metrics: map[string]perf.Series{
				perf.MetricWallNS: perf.NewSeries("ns", wall),
			},
		}},
	}
	path := filepath.Join(dir, name)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLedgerBaseline(t *testing.T) {
	dir := t.TempDir()
	ldir := filepath.Join(dir, "ledger")
	env := perf.Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, NumCPU: 1, Seed: 1, N: 400, K: 5}
	otherEnv := env
	otherEnv.GoVersion = "go1.23.0"

	l, err := ledger.Open(ldir)
	if err != nil {
		t.Fatal(err)
	}
	// An env-matching baseline at 100ms and a newer foreign-env entry at
	// 50ms: fingerprint matching must pick the 100ms one.
	for _, pk := range []struct {
		name    string
		env     perf.Env
		created int64
		wall    float64
	}{
		{"match.json", env, 1000, 100e6},
		{"foreign.json", otherEnv, 2000, 50e6},
	} {
		p := &perf.Pack{
			Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: 1,
			CreatedUnixMS: pk.created, Env: pk.env,
			Benchmarks: []perf.Benchmark{{
				Name:    "synthetic/op",
				Metrics: map[string]perf.Series{perf.MetricWallNS: perf.NewSeries("ns", []float64{pk.wall})},
			}},
		}
		var buf bytes.Buffer
		if err := p.WriteCanonical(&buf); err != nil {
			t.Fatal(err)
		}
		if _, _, err := l.Append(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}

	// Current pack in the matching env at ~100ms: against the env-matching
	// 100ms baseline this is no drift. (Against the newer foreign 50ms
	// entry it would be a 2x regression, so a pass proves the fingerprint
	// match picked the right baseline.)
	cur := writeEnvPack(t, dir, "cur.json", env, []float64{101e6})
	if err := realMain([]string{cur}, 0.25, 4, "", false, false, false, false, ldir); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("env-matching ledger baseline: exit %d (%v), want 0", perf.ExitCode(err), err)
	}

	// A genuinely regressed current pack still gates.
	worse := writeEnvPack(t, dir, "worse.json", env, []float64{200e6})
	if err := realMain([]string{worse}, 0.25, 4, "", false, false, false, false, ldir); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("regressed against ledger baseline: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}

	// No env match: falls back to the newest entry (50ms) rather than
	// erroring, so the same current pack now reads as drift.
	thirdEnv := env
	thirdEnv.GoVersion = "go1.22.0"
	other := writeEnvPack(t, dir, "other.json", thirdEnv, []float64{101e6})
	if err := realMain([]string{other}, 0.25, 4, "", false, false, false, false, ldir); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("fallback baseline: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}

	// Usage errors: two positional args with -baseline-ledger, empty ledger.
	if err := realMain([]string{cur, cur}, 0.25, 4, "", false, false, false, false, ldir); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("two args with -baseline-ledger: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
	if err := realMain([]string{cur}, 0.25, 4, "", false, false, false, false, filepath.Join(dir, "empty")); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("empty ledger: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	cur := writePack(t, dir, "cur.json", []float64{101e6, 99e6, 100e6})

	b, err := readPack(base, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := readPack(cur, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := perf.Compare(b, c, perf.CompareOptions{RelThreshold: 0.25, MADFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out1, out2 bytes.Buffer
	if err := writeDiffJSON(&out1, d); err != nil {
		t.Fatal(err)
	}
	if err := writeDiffJSON(&out2, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("canonical JSON output is not byte-stable")
	}
	var doc map[string]any
	if err := json.Unmarshal(out1.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out1.String())
	}
	if doc["drifted"] != float64(0) {
		t.Errorf("drifted = %v, want 0", doc["drifted"])
	}
	rows, ok := doc["rows"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("rows missing from -json output: %s", out1.String())
	}
	row := rows[0].(map[string]any)
	if row["benchmark"] != "synthetic/op" || row["metric"] != perf.MetricWallNS {
		t.Errorf("row = %v", row)
	}

	// Real packs carry NaN ratios (zero baseline medians) and NaN MADs
	// (single-rep packs), which encoding/json rejects as raw floats — the
	// writer must emit the pinned string spellings instead of failing.
	d.Rows[0].Ratio = math.NaN()
	d.Rows[0].BaseMAD = math.Inf(1)
	var nanOut bytes.Buffer
	if err := writeDiffJSON(&nanOut, d); err != nil {
		t.Fatalf("writeDiffJSON with NaN ratio: %v", err)
	}
	if err := json.Unmarshal(nanOut.Bytes(), &doc); err != nil {
		t.Fatalf("NaN output is not JSON: %v\n%s", err, nanOut.String())
	}
	row = doc["rows"].([]any)[0].(map[string]any)
	if row["ratio"] != "NaN" || row["base_mad"] != "+Inf" {
		t.Errorf("non-finite spellings: ratio=%v base_mad=%v", row["ratio"], row["base_mad"])
	}
}
