package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"microdata/internal/telemetry/perf"
)

// writePack seals a one-benchmark pack with the given wall medians and
// writes it under dir.
func writePack(t *testing.T, dir, name string, wall []float64) string {
	t.Helper()
	p := &perf.Pack{
		Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: len(wall),
		Benchmarks: []perf.Benchmark{{
			Name: "synthetic/op",
			Metrics: map[string]perf.Series{
				perf.MetricWallNS: perf.NewSeries("ns", wall),
			},
		}},
	}
	path := filepath.Join(dir, name)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(args ...string) error {
	return realMain(args, 0.25, 4, "", false, false, false)
}

func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	same := writePack(t, dir, "same.json", []float64{101e6, 99e6, 100e6})
	worse := writePack(t, dir, "worse.json", []float64{200e6, 205e6, 198e6})

	if err := run(base, same); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("identical packs: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
	if err := run(base, worse); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("doubled timings: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
	if err := run(base); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("one arg: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
	if err := run(base, filepath.Join(dir, "missing.json")); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("missing file: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}

	notAPack := filepath.Join(dir, "other.json")
	if err := os.WriteFile(notAPack, []byte(`{"schema":"something-else","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(base, notAPack); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("wrong schema: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}

func TestTamperedPackFailsVerification(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	cur := writePack(t, dir, "cur.json", []float64{101e6, 99e6, 100e6})

	// Hand-edit one timing digit after sealing.
	raw, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(raw, []byte("99000000"), []byte("99000001"), 1)
	if bytes.Equal(edited, raw) {
		t.Fatalf("tamper target not found in %s", raw)
	}
	if err := os.WriteFile(cur, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(base, cur); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	if err := realMain([]string{cur}, 0.25, 4, "", false, true, false); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("-verify-only on tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	// -skip-verify waives the seal so the comparator still runs (and the
	// one-digit edit is well inside the envelope).
	if err := realMain([]string{base, cur}, 0.25, 4, "", true, false, false); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("-skip-verify on tampered pack: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
}

func TestCustomGate(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, goroutines float64) string {
		p := &perf.Pack{
			Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: 1,
			Benchmarks: []perf.Benchmark{{
				Name: "synthetic/op",
				Metrics: map[string]perf.Series{
					perf.MetricWallNS:     perf.NewSeries("ns", []float64{100e6}),
					perf.MetricGoroutines: perf.NewSeries("count", []float64{goroutines}),
				},
			}},
		}
		path := filepath.Join(dir, name)
		if err := p.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := mk("base.json", 4)
	cur := mk("cur.json", 400)

	// Goroutines are ungated by default: no drift.
	if err := run(base, cur); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("default gate: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
	// Gating on goroutines turns the 100x blowup into drift.
	if err := realMain([]string{base, cur}, 0.25, 4, "goroutines", false, false, false); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("-gate goroutines: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
}
