package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"microdata/internal/telemetry/perf"
)

// writePack seals a one-benchmark pack with the given wall medians and
// writes it under dir.
func writePack(t *testing.T, dir, name string, wall []float64) string {
	t.Helper()
	p := &perf.Pack{
		Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: len(wall),
		Benchmarks: []perf.Benchmark{{
			Name: "synthetic/op",
			Metrics: map[string]perf.Series{
				perf.MetricWallNS: perf.NewSeries("ns", wall),
			},
		}},
	}
	path := filepath.Join(dir, name)
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(args ...string) error {
	return realMain(args, 0.25, 4, "", false, false, false, false)
}

func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	same := writePack(t, dir, "same.json", []float64{101e6, 99e6, 100e6})
	worse := writePack(t, dir, "worse.json", []float64{200e6, 205e6, 198e6})

	if err := run(base, same); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("identical packs: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
	if err := run(base, worse); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("doubled timings: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
	if err := run(base); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("one arg: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
	if err := run(base, filepath.Join(dir, "missing.json")); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("missing file: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}

	notAPack := filepath.Join(dir, "other.json")
	if err := os.WriteFile(notAPack, []byte(`{"schema":"something-else","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(base, notAPack); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("wrong schema: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}

func TestTamperedPackFailsVerification(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	cur := writePack(t, dir, "cur.json", []float64{101e6, 99e6, 100e6})

	// Hand-edit one timing digit after sealing.
	raw, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(raw, []byte("99000000"), []byte("99000001"), 1)
	if bytes.Equal(edited, raw) {
		t.Fatalf("tamper target not found in %s", raw)
	}
	if err := os.WriteFile(cur, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(base, cur); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	if err := realMain([]string{cur}, 0.25, 4, "", false, true, false, false); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("-verify-only on tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	// -skip-verify waives the seal so the comparator still runs (and the
	// one-digit edit is well inside the envelope).
	if err := realMain([]string{base, cur}, 0.25, 4, "", true, false, false, false); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("-skip-verify on tampered pack: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
}

func TestCustomGate(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, goroutines float64) string {
		p := &perf.Pack{
			Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: 1,
			Benchmarks: []perf.Benchmark{{
				Name: "synthetic/op",
				Metrics: map[string]perf.Series{
					perf.MetricWallNS:     perf.NewSeries("ns", []float64{100e6}),
					perf.MetricGoroutines: perf.NewSeries("count", []float64{goroutines}),
				},
			}},
		}
		path := filepath.Join(dir, name)
		if err := p.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := mk("base.json", 4)
	cur := mk("cur.json", 400)

	// Goroutines are ungated by default: no drift.
	if err := run(base, cur); perf.ExitCode(err) != perf.ExitOK {
		t.Errorf("default gate: exit %d (%v), want 0", perf.ExitCode(err), err)
	}
	// Gating on goroutines turns the 100x blowup into drift.
	if err := realMain([]string{base, cur}, 0.25, 4, "goroutines", false, false, false, false); perf.ExitCode(err) != perf.ExitDrift {
		t.Errorf("-gate goroutines: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	base := writePack(t, dir, "base.json", []float64{100e6, 102e6, 98e6})
	cur := writePack(t, dir, "cur.json", []float64{101e6, 99e6, 100e6})

	b, err := readPack(base, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := readPack(cur, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := perf.Compare(b, c, perf.CompareOptions{RelThreshold: 0.25, MADFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out1, out2 bytes.Buffer
	if err := writeDiffJSON(&out1, d); err != nil {
		t.Fatal(err)
	}
	if err := writeDiffJSON(&out2, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("canonical JSON output is not byte-stable")
	}
	var doc map[string]any
	if err := json.Unmarshal(out1.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out1.String())
	}
	if doc["drifted"] != float64(0) {
		t.Errorf("drifted = %v, want 0", doc["drifted"])
	}
	rows, ok := doc["rows"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("rows missing from -json output: %s", out1.String())
	}
	row := rows[0].(map[string]any)
	if row["benchmark"] != "synthetic/op" || row["metric"] != perf.MetricWallNS {
		t.Errorf("row = %v", row)
	}

	// Real packs carry NaN ratios (zero baseline medians) and NaN MADs
	// (single-rep packs), which encoding/json rejects as raw floats — the
	// writer must emit the pinned string spellings instead of failing.
	d.Rows[0].Ratio = math.NaN()
	d.Rows[0].BaseMAD = math.Inf(1)
	var nanOut bytes.Buffer
	if err := writeDiffJSON(&nanOut, d); err != nil {
		t.Fatalf("writeDiffJSON with NaN ratio: %v", err)
	}
	if err := json.Unmarshal(nanOut.Bytes(), &doc); err != nil {
		t.Fatalf("NaN output is not JSON: %v\n%s", err, nanOut.String())
	}
	row = doc["rows"].([]any)[0].(map[string]any)
	if row["ratio"] != "NaN" || row["base_mad"] != "+Inf" {
		t.Errorf("non-finite spellings: ratio=%v base_mad=%v", row["ratio"], row["base_mad"])
	}
}
