// Command benchdiff compares two perf packs (see DESIGN.md "Perf packs")
// and gates on regression drift. It verifies both packs' self-manifests,
// runs the median/MAD comparator over every benchmark the baseline carries,
// prints the per-metric drift table, and exits with a stable code scripts
// and CI can branch on:
//
//	0  no drift (improvements and ungated health changes are fine)
//	1  internal failure
//	2  a pack failed manifest verification (edited after sealing, or unsealed)
//	5  regression drift: a gated metric exceeded the noise envelope, or a
//	   baseline benchmark is missing from the current pack
//	6  invalid input (bad flags, unreadable or non-pack files)
//
// With -baseline-ledger the baseline comes from a trajectory ledger (see
// cmd/anonstat) instead of a hand-committed file: the newest ledger perf
// entry whose environment fingerprint matches the current pack is chosen
// (falling back to the newest perf entry overall, with the differing
// fingerprint fields surfaced).
//
// Usage:
//
//	benchdiff baseline.json current.json
//	benchdiff -rel-threshold 0.5 -v bench/ci-baseline.json perf_ci.json
//	benchdiff -baseline-ledger bench/ledger perf_ci.json
//	benchdiff -verify-only pack.json
//	benchdiff -skip-verify edited.json current.json   # drift-test unsealed edits
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"microdata/internal/telemetry/ledger"
	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

func main() {
	var (
		relThreshold = flag.Float64("rel-threshold", 0.25, "relative drift threshold (fraction of the baseline median)")
		madFactor    = flag.Float64("mad-factor", 4, "baseline MAD multiplier widening the noise envelope")
		gate         = flag.String("gate", "", "comma list of metrics whose drift fails the gate (default wall_ns,allocs)")
		skipVerify   = flag.Bool("skip-verify", false, "skip manifest verification (compare packs edited after sealing)")
		verifyOnly   = flag.Bool("verify-only", false, "verify a single pack's manifest and exit")
		verbose      = flag.Bool("v", false, "print every metric row, including ungated health series")
		jsonOut      = flag.Bool("json", false, "emit the full drift comparison as canonical JSON on stdout instead of the table (exit codes unchanged)")
		baseLedger   = flag.String("baseline-ledger", "", "pick the baseline from this trajectory ledger (newest env-matching perf entry) instead of a baseline file argument")
	)
	flag.Parse()

	if err := realMain(flag.Args(), *relThreshold, *madFactor, *gate, *skipVerify, *verifyOnly, *verbose, *jsonOut, *baseLedger); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(perf.ExitCode(err))
	}
}

func realMain(args []string, relThreshold, madFactor float64, gate string, skipVerify, verifyOnly, verbose, jsonOut bool, baseLedger string) error {
	if verifyOnly {
		if len(args) != 1 {
			return perf.Invalidf("-verify-only takes exactly one pack (got %d args)", len(args))
		}
		if err := perf.VerifyFile(args[0]); err != nil {
			return err
		}
		fmt.Printf("%s: manifest ok\n", args[0])
		return nil
	}
	var base, cur *perf.Pack
	var err error
	if baseLedger != "" {
		if len(args) != 1 {
			return perf.Invalidf("usage: benchdiff -baseline-ledger DIR [flags] current.json (got %d args)", len(args))
		}
		cur, err = readPack(args[0], skipVerify)
		if err != nil {
			return err
		}
		base, err = ledgerBaseline(baseLedger, cur)
		if err != nil {
			return err
		}
	} else {
		if len(args) != 2 {
			return perf.Invalidf("usage: benchdiff [flags] baseline.json current.json (got %d args)", len(args))
		}
		base, err = readPack(args[0], skipVerify)
		if err != nil {
			return err
		}
		cur, err = readPack(args[1], skipVerify)
		if err != nil {
			return err
		}
	}

	opts := perf.CompareOptions{RelThreshold: relThreshold, MADFactor: madFactor}
	if gate != "" {
		for _, m := range strings.Split(gate, ",") {
			if m = strings.TrimSpace(m); m != "" {
				opts.Gated = append(opts.Gated, m)
			}
		}
		if opts.Gated == nil {
			return perf.Invalidf("-gate lists no metrics")
		}
	}
	d, err := perf.Compare(base, cur, opts)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := writeDiffJSON(os.Stdout, d); err != nil {
			return err
		}
	} else {
		d.WriteTable(os.Stdout, verbose)
	}
	if !d.OK() {
		return perf.Exit(perf.ExitDrift,
			fmt.Errorf("regression drift: %d gated metrics drifted, %d baseline benchmarks missing", d.Drifted, len(d.Missing)))
	}
	return nil
}

// writeDiffJSON emits the comparison in the same canonical JSON form the
// packs themselves use (sorted keys, no HTML escaping, trailing newline),
// so the output is byte-stable for a given pair of packs and scripts can
// diff or archive it directly. Ratio is NaN whenever the baseline median
// is zero (and single-rep MADs can be NaN too), which encoding/json
// rejects — the float fields marshal through resultpack.Float, pinning
// the same "NaN"/"+Inf"/"-Inf" spellings the result packs use.
func writeDiffJSON(w io.Writer, d *perf.Diff) error {
	type jsonRow struct {
		Benchmark string           `json:"benchmark"`
		Metric    string           `json:"metric"`
		Unit      string           `json:"unit,omitempty"`
		Base      resultpack.Float `json:"base_median"`
		BaseMAD   resultpack.Float `json:"base_mad"`
		Cur       resultpack.Float `json:"cur_median"`
		Ratio     resultpack.Float `json:"ratio"`
		Verdict   perf.Verdict     `json:"verdict"`
	}
	rows := make([]jsonRow, len(d.Rows))
	for i, r := range d.Rows {
		rows[i] = jsonRow{
			Benchmark: r.Benchmark, Metric: r.Metric, Unit: r.Unit,
			Base: resultpack.Float(r.Base), BaseMAD: resultpack.Float(r.BaseMAD),
			Cur: resultpack.Float(r.Cur), Ratio: resultpack.Float(r.Ratio),
			Verdict: r.Verdict,
		}
	}
	raw, err := json.Marshal(struct {
		BaseSuite  string           `json:"base_suite"`
		CurSuite   string           `json:"cur_suite"`
		Rows       []jsonRow        `json:"rows"`
		Missing    []string         `json:"missing,omitempty"`
		EnvChanges []perf.EnvChange `json:"env_changes,omitempty"`
		Drifted    int              `json:"drifted"`
		Improved   int              `json:"improved"`
	}{d.BaseSuite, d.CurSuite, rows, d.Missing, d.EnvChanges, d.Drifted, d.Improved})
	if err != nil {
		return err
	}
	canon, err := perf.Canonicalize(raw)
	if err != nil {
		return err
	}
	if _, err := w.Write(canon); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// ledgerBaseline picks the comparison baseline out of a trajectory ledger:
// the newest perf entry whose environment fingerprint matches the current
// pack's, so cross-machine or cross-toolchain entries never masquerade as
// the reference. With no fingerprint match the newest perf entry is used
// and the differing fields are printed (the comparator surfaces them in
// its output too).
func ledgerBaseline(dir string, cur *perf.Pack) (*perf.Pack, error) {
	l, err := ledger.Open(dir)
	if err != nil {
		return nil, err
	}
	entries := l.Entries(ledger.KindPerf)
	if len(entries) == 0 {
		return nil, perf.Invalidf("ledger %s holds no perf entries", dir)
	}
	fp := cur.Env.Fingerprint()
	pick := -1
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].EnvFingerprint == fp {
			pick = i
			break
		}
	}
	match := "env match"
	if pick < 0 {
		pick = len(entries) - 1
		match = fmt.Sprintf("no env match — fingerprint differs in: %s",
			perf.EnvChangeFields(perf.DiffEnv(entries[pick].Env, cur.Env)))
	}
	e := entries[pick]
	fmt.Fprintf(os.Stderr, "benchdiff: baseline %s from ledger %s (suite %s, %s)\n",
		e.Digest[:12], dir, e.Suite, match)
	return l.ReadPerf(e.Digest)
}

// readPack loads a pack, verifying the self-manifest unless told not to.
// With -skip-verify the document still has to be a well-formed pack of the
// supported schema/version — only the integrity seal is waived.
func readPack(path string, skipVerify bool) (*perf.Pack, error) {
	if !skipVerify {
		return perf.ReadFile(path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, perf.Invalidf("%v", err)
	}
	var p perf.Pack
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, perf.Invalidf("%s: parse pack: %v", path, err)
	}
	if p.Schema != perf.Schema || p.Version != perf.Version {
		return nil, perf.Invalidf("%s: not a %s v%d document", path, perf.Schema, perf.Version)
	}
	return &p, nil
}
