// Command benchdiff compares two perf packs (see DESIGN.md "Perf packs")
// and gates on regression drift. It verifies both packs' self-manifests,
// runs the median/MAD comparator over every benchmark the baseline carries,
// prints the per-metric drift table, and exits with a stable code scripts
// and CI can branch on:
//
//	0  no drift (improvements and ungated health changes are fine)
//	1  internal failure
//	2  a pack failed manifest verification (edited after sealing, or unsealed)
//	5  regression drift: a gated metric exceeded the noise envelope, or a
//	   baseline benchmark is missing from the current pack
//	6  invalid input (bad flags, unreadable or non-pack files)
//
// Usage:
//
//	benchdiff baseline.json current.json
//	benchdiff -rel-threshold 0.5 -v bench/ci-baseline.json perf_ci.json
//	benchdiff -verify-only pack.json
//	benchdiff -skip-verify edited.json current.json   # drift-test unsealed edits
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"microdata/internal/telemetry/perf"
)

func main() {
	var (
		relThreshold = flag.Float64("rel-threshold", 0.25, "relative drift threshold (fraction of the baseline median)")
		madFactor    = flag.Float64("mad-factor", 4, "baseline MAD multiplier widening the noise envelope")
		gate         = flag.String("gate", "", "comma list of metrics whose drift fails the gate (default wall_ns,allocs)")
		skipVerify   = flag.Bool("skip-verify", false, "skip manifest verification (compare packs edited after sealing)")
		verifyOnly   = flag.Bool("verify-only", false, "verify a single pack's manifest and exit")
		verbose      = flag.Bool("v", false, "print every metric row, including ungated health series")
	)
	flag.Parse()

	if err := realMain(flag.Args(), *relThreshold, *madFactor, *gate, *skipVerify, *verifyOnly, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(perf.ExitCode(err))
	}
}

func realMain(args []string, relThreshold, madFactor float64, gate string, skipVerify, verifyOnly, verbose bool) error {
	if verifyOnly {
		if len(args) != 1 {
			return perf.Invalidf("-verify-only takes exactly one pack (got %d args)", len(args))
		}
		if err := perf.VerifyFile(args[0]); err != nil {
			return err
		}
		fmt.Printf("%s: manifest ok\n", args[0])
		return nil
	}
	if len(args) != 2 {
		return perf.Invalidf("usage: benchdiff [flags] baseline.json current.json (got %d args)", len(args))
	}
	base, err := readPack(args[0], skipVerify)
	if err != nil {
		return err
	}
	cur, err := readPack(args[1], skipVerify)
	if err != nil {
		return err
	}

	opts := perf.CompareOptions{RelThreshold: relThreshold, MADFactor: madFactor}
	if gate != "" {
		for _, m := range strings.Split(gate, ",") {
			if m = strings.TrimSpace(m); m != "" {
				opts.Gated = append(opts.Gated, m)
			}
		}
		if opts.Gated == nil {
			return perf.Invalidf("-gate lists no metrics")
		}
	}
	d, err := perf.Compare(base, cur, opts)
	if err != nil {
		return err
	}
	d.WriteTable(os.Stdout, verbose)
	if !d.OK() {
		return perf.Exit(perf.ExitDrift,
			fmt.Errorf("regression drift: %d gated metrics drifted, %d baseline benchmarks missing", d.Drifted, len(d.Missing)))
	}
	return nil
}

// readPack loads a pack, verifying the self-manifest unless told not to.
// With -skip-verify the document still has to be a well-formed pack of the
// supported schema/version — only the integrity seal is waived.
func readPack(path string, skipVerify bool) (*perf.Pack, error) {
	if !skipVerify {
		return perf.ReadFile(path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, perf.Invalidf("%v", err)
	}
	var p perf.Pack
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, perf.Invalidf("%s: parse pack: %v", path, err)
	}
	if p.Schema != perf.Schema || p.Version != perf.Version {
		return nil, perf.Invalidf("%s: not a %s v%d document", path, perf.Schema, perf.Version)
	}
	return &p, nil
}
