// Command anonbench runs the paper-reproduction experiments (E1–E15): the
// tables and figures of "On the Comparison of Microdata Disclosure Control
// Algorithms" (EDBT 2009) plus the scaled algorithm-comparison studies.
//
// Usage:
//
//	anonbench -list
//	anonbench -run E4
//	anonbench -run all -n 5000 -ks 2,5,10,25,50 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microdata"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiments and exit")
		run  = flag.String("run", "all", "experiment id (E1..E15) or \"all\"")
		n    = flag.Int("n", 1000, "synthetic census size for E14/E15")
		ks   = flag.String("ks", "2,5,10,25,50", "comma-separated k sweep for E14/E15")
		seed = flag.Int64("seed", 1, "seed for the census draw and stochastic algorithms")
	)
	flag.Parse()

	kVals, err := parseKs(*ks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(2)
	}
	opts := microdata.ExperimentOptions{CensusN: *n, Ks: kVals, Seed: *seed}

	if *list {
		fmt.Println("Experiments (see DESIGN.md for the per-experiment index):")
		for _, e := range microdata.Experiments(opts) {
			fmt.Printf("  %-4s %-62s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return
	}

	if *run == "all" {
		err = microdata.RunAllExperiments(os.Stdout, opts)
	} else {
		err = microdata.RunExperiment(os.Stdout, *run, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(1)
	}
}

func parseKs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("invalid k %q", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty k sweep")
	}
	return out, nil
}
