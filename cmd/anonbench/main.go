// Command anonbench runs the paper-reproduction experiments (E1–E15): the
// tables and figures of "On the Comparison of Microdata Disclosure Control
// Algorithms" (EDBT 2009) plus the scaled algorithm-comparison studies.
//
// Usage:
//
//	anonbench -list
//	anonbench -run E4
//	anonbench -run all -n 5000 -ks 2,5,10,25,50 -seed 7
//	anonbench -enginestats -n 10000 -ks 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microdata"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "all", "experiment id (E1..E15) or \"all\"")
		n       = flag.Int("n", 1000, "synthetic census size for E14/E15")
		ks      = flag.String("ks", "2,5,10,25,50", "comma-separated k sweep for E14/E15")
		seed    = flag.Int64("seed", 1, "seed for the census draw and stochastic algorithms")
		engStat = flag.Bool("enginestats", false, "run every algorithm once on the census draw (first k of -ks) and print the evaluation-engine counters")
	)
	flag.Parse()

	kVals, err := parseKs(*ks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(2)
	}
	opts := microdata.ExperimentOptions{CensusN: *n, Ks: kVals, Seed: *seed}

	if *engStat {
		if err := engineStats(os.Stdout, *n, kVals[0], *seed); err != nil {
			fmt.Fprintln(os.Stderr, "anonbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("Experiments (see DESIGN.md for the per-experiment index):")
		for _, e := range microdata.Experiments(opts) {
			fmt.Printf("  %-4s %-62s [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return
	}

	if *run == "all" {
		err = microdata.RunAllExperiments(os.Stdout, opts)
	} else {
		err = microdata.RunExperiment(os.Stdout, *run, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(1)
	}
}

// engineStats runs every registered algorithm once on a synthetic census
// draw and prints the shared evaluation engine's counters from
// Result.Stats: nodes evaluated, cache hits/misses, rows scanned, and the
// precompute/evaluation wall time. Algorithms that never touch the lattice
// (the local-recoding ones) report no engine_* counters and are marked so.
func engineStats(w *os.File, n, k int, seed int64) error {
	tab, err := microdata.Generate(microdata.GeneratorConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	cfg := microdata.AlgorithmConfig{
		K:              k,
		Hierarchies:    microdata.CensusHierarchies(),
		Taxonomies:     microdata.CensusTaxonomies(),
		MaxSuppression: 0.05,
		Metric:         microdata.MetricLM,
		Seed:           seed,
	}
	fmt.Fprintf(w, "evaluation-engine counters (census N=%d, k=%d, seed=%d)\n", n, k, seed)
	fmt.Fprintf(w, "%-20s %10s %10s %10s %12s %8s %8s\n",
		"algorithm", "evaluated", "hits", "misses", "rows", "pre-ms", "eval-ms")
	for _, name := range microdata.AlgorithmNames() {
		alg, err := microdata.NewAlgorithm(name)
		if err != nil {
			return err
		}
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			return err
		}
		if _, ok := r.Stats["engine_nodes_evaluated"]; !ok {
			fmt.Fprintf(w, "%-20s %s\n", name, "(local recoding: no engine)")
			continue
		}
		fmt.Fprintf(w, "%-20s %10.0f %10.0f %10.0f %12.0f %8.1f %8.1f\n", name,
			r.Stats["engine_nodes_evaluated"], r.Stats["engine_cache_hits"],
			r.Stats["engine_cache_misses"], r.Stats["engine_rows_scanned"],
			r.Stats["engine_precompute_ms"], r.Stats["engine_eval_ms"])
	}
	return nil
}

func parseKs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("invalid k %q", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty k sweep")
	}
	return out, nil
}
