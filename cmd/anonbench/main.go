// Command anonbench runs the paper-reproduction experiments (E1–E19): the
// tables and figures of "On the Comparison of Microdata Disclosure Control
// Algorithms" (EDBT 2009) plus the scaled algorithm-comparison studies.
//
// Usage:
//
//	anonbench -list
//	anonbench -run E4
//	anonbench -run all -n 5000 -ks 2,5,10,25,50 -seed 7
//	anonbench -enginestats -n 10000 -ks 5
//	anonbench -bench-attack -n 10000 -ks 5 -bench-attack-out bench/attack.json
//	anonbench -bench-suite=all -n 10000 -ks 5 -bench-out bench/full.json
//
// Exit codes follow the stable contract shared with benchdiff and compare
// (see README "Exit codes"): 0 ok, 1 failure, 2 verification failure
// (e.g. an indexed attack vector diverging from its naive reference),
// 6 invalid input (bad flags, unknown experiment or suite names).
//
// Observability (see README "Observability" and "Live observability"):
//
//	anonbench -run E14 -v -log-format json
//	anonbench -run E1 -trace trace.json -metrics metrics.json
//	anonbench -enginestats -n 5000 -cpuprofile cpu.pprof -memprofile mem.pprof
//	anonbench -run all -n 10000 -progress
//	anonbench -run E14 -n 10000 -debug-addr :9090        # /metrics, /debug/pprof/*
//	anonbench -run E14 -report run.json                  # unified JSON run report
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"microdata"
	"microdata/internal/telemetry/perf"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "all", "experiment id (E1..E19) or \"all\"")
		n       = flag.Int("n", 1000, "synthetic census size for E14/E15")
		ks      = flag.String("ks", "2,5,10,25,50", "comma-separated k sweep for E14/E15")
		seed    = flag.Int64("seed", 1, "seed for the census draw and stochastic algorithms")
		engStat = flag.Bool("enginestats", false, "run every algorithm once on the census draw (first k of -ks) and print the evaluation-engine counters")
		workers = flag.Int("workers", 0, "worker goroutines for the parallel kernels (engine node evaluation, attack shards, morsel-driven group-by, typed-column reductions); 0 = GOMAXPROCS")

		benchAtk    = flag.Bool("bench-attack", false, "time the record-linkage attack pipeline (naive vs indexed, serial vs parallel) on the census draw and write a JSON report")
		benchAtkOut = flag.String("bench-attack-out", "BENCH_attack.json", "output path for the -bench-attack JSON report (\"-\" for stdout, \"\" to skip)")

		benchSuiteSel  = flag.String("bench-suite", "", "run the named canonical benchmark suites (\"all\" or a comma list of attack,engine,groupby,groupby-parallel,ingest,typedcol) and write a sealed perf pack")
		benchSuiteOut  = flag.String("bench-out", "-", "output path for the -bench-suite perf pack (\"-\" for stdout)")
		benchSuiteReps = flag.Int("bench-reps", 5, "timed repetitions per benchmark for -bench-suite")

		verbose    = flag.Bool("v", false, "enable debug-level structured logging on stderr")
		logFormat  = flag.String("log-format", "", "structured log format: text or json (implies logging even without -v)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run's spans (load in chrome://tracing or Perfetto)")
		metricsOut = flag.String("metrics", "", "write a metrics snapshot JSON file (\"-\" for stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")

		progressUI = flag.Bool("progress", false, "render live progress (done/total, rate, ETA) on stderr")
		debugAddr  = flag.String("debug-addr", "", "serve the HTTP debug endpoints (/metrics, /debug/pprof/*, /healthz, /progress, /runinfo) on this address (\":0\" picks a free port)")
		debugHold  = flag.Bool("debug-hold", false, "with -debug-addr: keep serving after the run completes until interrupted")
		reportOut  = flag.String("report", "", "write the unified JSON run report to this file (\"-\" for stdout)")
		resultOut  = flag.String("result-out", "", "with -run: additionally capture the run's results (per-algorithm measures, attack risks, report digests) into a sealed result pack at this path (\"-\" for stdout; verify with `compare -verify`)")
	)
	flag.Parse()
	microdata.SetDefaultWorkers(*workers)

	if err := realMain(options{
		list: *list, run: *run, n: *n, ks: *ks, seed: *seed, engStat: *engStat,
		benchAttack: *benchAtk, benchAttackOut: *benchAtkOut,
		benchSuite: *benchSuiteSel, benchSuiteOut: *benchSuiteOut, benchSuiteReps: *benchSuiteReps,
		verbose: *verbose, logFormat: *logFormat,
		traceOut: *traceOut, metricsOut: *metricsOut,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
		progress: *progressUI, debugAddr: *debugAddr, debugHold: *debugHold,
		reportOut: *reportOut, resultOut: *resultOut,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "anonbench:", err)
		os.Exit(perf.ExitCode(err))
	}
}

type options struct {
	list                   bool
	run                    string
	n                      int
	ks                     string
	seed                   int64
	engStat                bool
	benchAttack            bool
	benchAttackOut         string
	benchSuite             string
	benchSuiteOut          string
	benchSuiteReps         int
	verbose                bool
	logFormat              string
	traceOut, metricsOut   string
	cpuProfile, memProfile string
	progress               bool
	debugAddr              string
	debugHold              bool
	reportOut              string
	resultOut              string
}

// captureResults runs the selected experiments with the result-pack sink
// attached: the text reports still stream to stdout while the capture
// seals the per-algorithm measures, attack risks and report digests, and
// the run report (schema v2) links the pack's manifest digest.
func captureResults(ctx context.Context, rb *microdata.RunReportBuilder, opts microdata.ExperimentOptions, ids []string, out string) error {
	pack, err := microdata.CaptureResultPack(ctx, microdata.ResultCaptureConfig{
		Opts:         opts,
		Experiments:  ids,
		Algorithms:   true,
		Attack:       true,
		ReportWriter: os.Stdout,
	})
	if err != nil {
		return err
	}
	if err := microdata.WriteResultPack(pack, out); err != nil {
		return err
	}
	if out != "-" {
		fmt.Fprintf(os.Stderr, "anonbench: result pack sealed: %s (sha256:%s)\n", out, pack.Manifest.Digest)
	}
	rb.SetResultPack(out, pack.Manifest.Digest)
	return nil
}

// realMain wires the observability sinks around the selected mode so every
// mode (-run, -list, -enginestats) profiles and traces the same way.
func realMain(o options) error {
	kVals, err := parseKs(o.ks)
	if err != nil {
		return perf.Exit(perf.ExitInvalid, err)
	}
	opts := microdata.ExperimentOptions{CensusN: o.n, Ks: kVals, Seed: o.seed}
	if o.resultOut != "" && (o.list || o.engStat || o.benchAttack || o.benchSuite != "") {
		return perf.Invalidf("-result-out only applies to experiment runs (-run)")
	}

	if o.verbose || o.logFormat != "" {
		h, err := microdata.NewLogHandler(os.Stderr, o.logFormat, o.verbose)
		if err != nil {
			return err
		}
		microdata.SetLogHandler(h)
	}

	// A collector is installed whenever any span or metrics consumer is
	// active: -trace and -metrics need it, -enginestats derives its
	// per-phase breakdown from the recorded spans, the debug server's
	// /metrics endpoint scrapes its registry, and -report merges all of it.
	var col *microdata.TelemetryCollector
	if o.traceOut != "" || o.metricsOut != "" || o.engStat || o.debugAddr != "" || o.reportOut != "" {
		col = microdata.NewTelemetryCollector()
		microdata.SetTelemetryCollector(col)
		defer microdata.SetTelemetryCollector(nil)
	}

	// Progress tracking feeds both the -progress terminal renderer and the
	// debug server's /progress endpoint and progress.* metric series.
	var progRoot *microdata.ProgressTracker
	if o.progress || o.debugAddr != "" {
		progRoot = microdata.EnableProgress("anonbench")
		defer microdata.DisableProgress()
	}
	var renderer *microdata.ProgressRenderer
	if o.progress {
		renderer = microdata.NewProgressRenderer(os.Stderr, progRoot, 0)
		defer renderer.Stop()
	}

	var srv *microdata.DebugServer
	if o.debugAddr != "" {
		var err error
		srv, err = microdata.StartDebugServer(o.debugAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "anonbench: debug server listening on %s\n", srv.URL())
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anonbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "anonbench: memprofile:", err)
			}
		}()
	}

	// Sinks flush after the mode body returns (and after the run root span
	// ends), so the deferred writers run last-in-first-out before the
	// profile defers above.
	rb := microdata.BeginRunReport("anonbench", mode(o))
	var runErr error
	func() {
		ctx, sp := microdata.StartSpan(context.Background(), "anonbench.run",
			microdata.SpanString("mode", mode(o)),
			microdata.SpanInt("n", o.n), microdata.SpanInt64("seed", o.seed))
		defer sp.End()

		switch {
		case o.benchSuite != "":
			runErr = benchSuite(ctx, os.Stderr, o.benchSuite, o.benchSuiteOut, o.n, kVals[0], o.seed, o.benchSuiteReps)
		case o.benchAttack:
			runErr = benchAttack(ctx, os.Stdout, o.benchAttackOut, o.n, kVals[0], o.seed)
		case o.engStat:
			runErr = engineStats(ctx, os.Stdout, o.n, kVals[0], o.seed, col)
		case o.list:
			fmt.Println("Experiments (see DESIGN.md for the per-experiment index):")
			for _, e := range microdata.Experiments(opts) {
				fmt.Printf("  %-4s %-62s [%s]\n", e.ID, e.Title, e.Artifact)
			}
		case o.run == "all":
			if o.resultOut != "" {
				var ids []string
				for _, e := range microdata.Experiments(opts) {
					ids = append(ids, e.ID)
				}
				runErr = captureResults(ctx, rb, opts, ids, o.resultOut)
			} else {
				runErr = microdata.RunAllExperimentsContext(ctx, os.Stdout, opts)
			}
		default:
			if !experimentExists(o.run, opts) {
				runErr = perf.Invalidf("unknown experiment %q (see -list)", o.run)
				return
			}
			if o.resultOut != "" {
				runErr = captureResults(ctx, rb, opts, []string{o.run}, o.resultOut)
			} else {
				runErr = microdata.RunExperimentContext(ctx, os.Stdout, o.run, opts)
			}
		}
	}()

	// The renderer's final frame must land before any stdout report writers
	// run, and the run report snapshots the tracker tree before it is torn
	// down by the deferred DisableProgress.
	if renderer != nil {
		renderer.Stop()
	}
	if col != nil && o.traceOut != "" {
		if err := writeFileOrStdout(o.traceOut, col.Tracer.WriteChromeTrace); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if col != nil && o.metricsOut != "" {
		snap := col.Metrics.Snapshot()
		if err := writeFileOrStdout(o.metricsOut, snap.WriteJSON); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if o.reportOut != "" {
		rep := rb.Finish(col, progRoot)
		if err := writeFileOrStdout(o.reportOut, rep.WriteJSON); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	if srv != nil && o.debugHold && runErr == nil {
		fmt.Fprintf(os.Stderr, "anonbench: run complete; holding debug server on %s (interrupt to exit)\n", srv.URL())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
	return runErr
}

func experimentExists(id string, opts microdata.ExperimentOptions) bool {
	for _, e := range microdata.Experiments(opts) {
		if e.ID == id {
			return true
		}
	}
	return false
}

func mode(o options) string {
	switch {
	case o.benchSuite != "":
		return "bench-suite:" + o.benchSuite
	case o.benchAttack:
		return "bench-attack"
	case o.engStat:
		return "enginestats"
	case o.list:
		return "list"
	default:
		return "run:" + o.run
	}
}

// writeFileOrStdout streams write to path, or to stdout when path is "-".
func writeFileOrStdout(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// engineStats runs every registered algorithm once on a synthetic census
// draw and prints the shared evaluation engine's counters from
// Result.Stats: nodes evaluated, cache hits/misses, rows scanned, and the
// precompute/evaluation wall time. Algorithms that never touch the lattice
// (the local-recoding ones) report no engine_* counters and are marked so.
// With the telemetry collector installed it also prints a per-phase
// wall-clock breakdown (precompute/search/materialize) derived from the
// recorded spans.
func engineStats(ctx context.Context, w io.Writer, n, k int, seed int64, col *microdata.TelemetryCollector) error {
	tab, err := microdata.Generate(microdata.GeneratorConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	cfg := microdata.AlgorithmConfig{
		K:              k,
		Hierarchies:    microdata.CensusHierarchies(),
		Taxonomies:     microdata.CensusTaxonomies(),
		MaxSuppression: 0.05,
		Metric:         microdata.MetricLM,
		Seed:           seed,
	}
	fmt.Fprintf(w, "evaluation-engine counters (census N=%d, k=%d, seed=%d)\n", n, k, seed)
	fmt.Fprintf(w, "%-20s %10s %10s %10s %12s %8s %8s\n",
		"algorithm", "evaluated", "hits", "misses", "rows", "pre-ms", "eval-ms")
	for _, name := range microdata.AlgorithmNames() {
		alg, err := microdata.NewAlgorithm(name)
		if err != nil {
			return err
		}
		r, err := microdata.AnonymizeContext(ctx, alg, tab, cfg)
		if err != nil {
			return err
		}
		if _, ok := r.Stats["engine_nodes_evaluated"]; !ok {
			fmt.Fprintf(w, "%-20s %s\n", name, "(local recoding: no engine)")
			continue
		}
		fmt.Fprintf(w, "%-20s %10.0f %10.0f %10.0f %12.0f %8.1f %8.1f\n", name,
			r.Stats["engine_nodes_evaluated"], r.Stats["engine_cache_hits"],
			r.Stats["engine_cache_misses"], r.Stats["engine_rows_scanned"],
			r.Stats["engine_precompute_ms"], r.Stats["engine_eval_ms"])
	}
	if col != nil {
		writePhaseBreakdown(w, col)
	}
	return nil
}

// writePhaseBreakdown prints the wall-clock split of each algorithm's run:
// engine precompute, the search proper, and result materialization, all
// read off the span tree (search = root span minus instrumented subtrees).
func writePhaseBreakdown(w io.Writer, col *microdata.TelemetryCollector) {
	spans := col.Tracer.Finished()
	type row struct {
		name                             string
		total, precompute, search, mater time.Duration
	}
	var rows []row
	for _, sp := range spans {
		name, ok := strings.CutSuffix(sp.Name, ".search")
		if !ok {
			continue
		}
		sub := microdata.SpanSubtreeDurations(spans, sp)
		r := row{
			name:       name,
			total:      sp.Duration(),
			precompute: sub["engine.precompute"],
			mater:      sub["algorithm.materialize"],
		}
		r.search = r.total - r.precompute - r.mater
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Fprintf(w, "\nper-phase wall clock from telemetry spans\n")
	fmt.Fprintf(w, "%-20s %10s %12s %10s %12s\n",
		"algorithm", "total-ms", "precomp-ms", "search-ms", "material-ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %10.1f %12.1f %10.1f %12.1f\n", r.name,
			ms(r.total), ms(r.precompute), ms(r.search), ms(r.mater))
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func parseKs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("invalid k %q", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty k sweep")
	}
	return out, nil
}
