package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"microdata"
	"microdata/internal/telemetry/perf"
)

func TestParseKs(t *testing.T) {
	ks, err := parseKs("2,5,10")
	if err != nil || len(ks) != 3 || ks[0] != 2 || ks[2] != 10 {
		t.Fatalf("parseKs = %v, %v", ks, err)
	}
	ks, err = parseKs(" 3 , 7 ,")
	if err != nil || len(ks) != 2 || ks[1] != 7 {
		t.Fatalf("parseKs with spaces = %v, %v", ks, err)
	}
	for _, bad := range []string{"", ",", "a", "0", "-3", "2,x"} {
		if _, err := parseKs(bad); err == nil {
			t.Errorf("parseKs(%q) should fail", bad)
		}
	}
}

// TestBenchAttackReport runs the -bench-attack mode on a small draw and
// checks the JSON report: both prosecutor releases timed, indexed vectors
// verified against naive (a divergence would have errored), and all
// timings/speedups populated.
func TestBenchAttackReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_attack.json")
	var buf strings.Builder
	if err := benchAttack(context.Background(), &buf, out, 300, 3, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep attackBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.N != 300 || rep.K != 3 || rep.Seed != 1 || rep.GOMAXPROCS < 1 {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Prosecutor) != 2 || rep.Prosecutor[0].Algorithm != "datafly" || rep.Prosecutor[1].Algorithm != "mondrian" {
		t.Fatalf("prosecutor rows = %+v", rep.Prosecutor)
	}
	for _, row := range rep.Prosecutor {
		if row.Regions < 1 {
			t.Errorf("%s: regions = %d", row.Algorithm, row.Regions)
		}
		if row.NaiveMS <= 0 || row.IndexedSerialMS <= 0 || row.IndexedParallelMS <= 0 {
			t.Errorf("%s: non-positive timing: %+v", row.Algorithm, row)
		}
		if row.SpeedupSerial <= 0 || row.SpeedupParallel <= 0 {
			t.Errorf("%s: non-positive speedup: %+v", row.Algorithm, row)
		}
	}
	j := rep.Journalist
	if j.Algorithm != "mondrian" || j.N != 300 || j.Population != 600 {
		t.Errorf("journalist row = %+v", j)
	}
	if j.NaiveMS <= 0 || j.IndexedMS <= 0 || j.Speedup <= 0 {
		t.Errorf("journalist timings = %+v", j)
	}
	if !strings.Contains(buf.String(), "attack benchmark (census N=300, k=3, seed=1") {
		t.Errorf("summary output = %q", buf.String())
	}
	// An empty output path skips the JSON file entirely.
	if err := benchAttack(context.Background(), io.Discard, "", 120, 3, 1); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStatsOutputByteCompatible pins the -enginestats counters table
// format: the header lines are byte-identical to the pre-telemetry output
// and every algorithm row matches the original column layout. The
// telemetry-derived phase table only APPENDS after the counters table.
func TestEngineStatsOutputByteCompatible(t *testing.T) {
	var plain strings.Builder
	if err := engineStats(context.Background(), &plain, 200, 3, 1, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(plain.String(), "\n"), "\n")
	if lines[0] != "evaluation-engine counters (census N=200, k=3, seed=1)" {
		t.Errorf("title line = %q", lines[0])
	}
	wantHeader := "algorithm             evaluated       hits     misses         rows   pre-ms  eval-ms"
	if lines[1] != wantHeader {
		t.Errorf("header = %q\n  want   %q", lines[1], wantHeader)
	}
	names := microdata.AlgorithmNames()
	if got := len(lines) - 2; got != len(names) {
		t.Fatalf("counters table has %d rows, want %d", got, len(names))
	}
	engineRow := regexp.MustCompile(`^\S[^ ]* + *\d+ +\d+ +\d+ +\d+ + *\d+\.\d +\d+\.\d$`)
	localRow := regexp.MustCompile(`^\S[^ ]* +\(local recoding: no engine\)$`)
	for i, line := range lines[2:] {
		if !strings.HasPrefix(line, names[i]) {
			t.Errorf("row %d = %q, want algorithm %q first", i, line, names[i])
		}
		if !engineRow.MatchString(line) && !localRow.MatchString(line) {
			t.Errorf("row does not match pre-telemetry layout: %q", line)
		}
	}

	// With a collector installed the counters table keeps the same shape
	// and the per-phase span breakdown is appended after it.
	col := microdata.NewTelemetryCollector()
	prev := microdata.SetTelemetryCollector(col)
	defer microdata.SetTelemetryCollector(prev)
	var traced strings.Builder
	if err := engineStats(context.Background(), &traced, 200, 3, 1, col); err != nil {
		t.Fatal(err)
	}
	got := traced.String()
	if !strings.HasPrefix(got, lines[0]+"\n"+lines[1]+"\n") {
		t.Error("collector run changed the counters table header")
	}
	idx := strings.Index(got, "\nper-phase wall clock from telemetry spans\n")
	if idx < 0 {
		t.Fatal("phase breakdown missing from collector run")
	}
	table := strings.Split(strings.TrimRight(got[:idx], "\n"), "\n")
	if len(table) != len(lines) {
		t.Errorf("counters table grew from %d to %d lines with collector installed", len(lines), len(table))
	}
	phaseHeader := "algorithm              total-ms   precomp-ms  search-ms  material-ms"
	if !strings.Contains(got[idx:], phaseHeader) {
		t.Errorf("phase table header missing; got tail %q", got[idx:])
	}
	phaseRows := strings.Count(strings.TrimRight(got[idx:], "\n"), "\n") - 2
	if phaseRows != len(names) {
		t.Errorf("phase table has %d rows, want one per algorithm (%d)", phaseRows, len(names))
	}
}

// TestResultOutSealsPackAndLinksReport drives realMain with -run E1
// -result-out -report and checks that (a) the sealed pack verifies, (b)
// the v2 run report links the pack's manifest digest, and (c) the table
// digest in the pack matches what a plain run prints.
func TestResultOutSealsPackAndLinksReport(t *testing.T) {
	dir := t.TempDir()
	packPath := filepath.Join(dir, "pack.json")
	reportPath := filepath.Join(dir, "report.json")
	err := realMain(options{
		run: "E1", n: 150, ks: "2,5", seed: 1,
		resultOut: packPath, reportOut: reportPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := microdata.ReadResultPack(packPath)
	if err != nil {
		t.Fatalf("sealed pack fails verification: %v", err)
	}
	if p.Source != microdata.ResultPackSourceCensus || p.Env.N != 150 || p.Env.Seed != 1 {
		t.Errorf("pack env = %+v", p.Env)
	}
	if len(p.Tables) != 1 || p.Tables[0].ID != "E1" {
		t.Errorf("tables = %+v", p.Tables)
	}
	if len(p.Algorithms) == 0 || len(p.Attack) == 0 {
		t.Errorf("capture sections missing: %d algorithms, %d attack", len(p.Algorithms), len(p.Attack))
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if doc["version"] != float64(2) {
		t.Errorf("run-report version = %v, want 2", doc["version"])
	}
	link, ok := doc["result_pack"].(map[string]any)
	if !ok {
		t.Fatalf("report missing result_pack link:\n%s", raw)
	}
	if link["path"] != packPath || link["sha256"] != p.Manifest.Digest {
		t.Errorf("result_pack link = %v, want path=%s sha256=%s", link, packPath, p.Manifest.Digest)
	}

	// -result-out outside an experiment run is an invalid combination.
	err = realMain(options{list: true, run: "all", n: 150, ks: "2", seed: 1, resultOut: packPath})
	if perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("-list -result-out: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}
