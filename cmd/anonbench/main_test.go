package main

import (
	"testing"
)

func TestParseKs(t *testing.T) {
	ks, err := parseKs("2,5,10")
	if err != nil || len(ks) != 3 || ks[0] != 2 || ks[2] != 10 {
		t.Fatalf("parseKs = %v, %v", ks, err)
	}
	ks, err = parseKs(" 3 , 7 ,")
	if err != nil || len(ks) != 2 || ks[1] != 7 {
		t.Fatalf("parseKs with spaces = %v, %v", ks, err)
	}
	for _, bad := range []string{"", ",", "a", "0", "-3", "2,x"} {
		if _, err := parseKs(bad); err == nil {
			t.Errorf("parseKs(%q) should fail", bad)
		}
	}
}
