package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"microdata"
	"microdata/internal/telemetry/perf"
)

// attackBenchReport is the JSON document -bench-attack writes: wall-clock
// timings of the naive reference matcher against the region-indexed
// adversary (serial and parallel) on the same census draw, with the indexed
// vectors verified element-identical to the naive ones before any number is
// reported.
type attackBenchReport struct {
	N          int                  `json:"n"`
	K          int                  `json:"k"`
	Seed       int64                `json:"seed"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Prosecutor []prosecutorBenchRow `json:"prosecutor"`
	Journalist journalistBenchRow   `json:"journalist"`
}

type prosecutorBenchRow struct {
	Algorithm         string  `json:"algorithm"`
	Regions           int     `json:"regions"`
	NaiveMS           float64 `json:"naive_ms"`
	IndexedSerialMS   float64 `json:"indexed_serial_ms"`
	IndexedParallelMS float64 `json:"indexed_parallel_ms"`
	SpeedupSerial     float64 `json:"speedup_serial"`
	SpeedupParallel   float64 `json:"speedup_parallel"`
}

type journalistBenchRow struct {
	Algorithm  string  `json:"algorithm"`
	N          int     `json:"n"`
	Population int     `json:"population"`
	NaiveMS    float64 `json:"naive_ms"`
	IndexedMS  float64 `json:"indexed_ms"`
	Speedup    float64 `json:"speedup"`
}

// benchAttack times the record-linkage attack pipeline. Prosecutor risk is
// measured on a generalization algorithm (datafly) and a partitioning one
// (mondrian) because they produce very different region counts; journalist
// risk is measured on the mondrian release with a sample capped at 2000
// rows and a population twice the sample, since the naive journalist scan
// is quadratic and would otherwise dominate the run.
func benchAttack(ctx context.Context, w io.Writer, out string, n, k int, seed int64) error {
	tab, err := microdata.Generate(microdata.GeneratorConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	cfg := microdata.AlgorithmConfig{
		K:              k,
		Hierarchies:    microdata.CensusHierarchies(),
		Taxonomies:     microdata.CensusTaxonomies(),
		MaxSuppression: 0.05,
		Metric:         microdata.MetricLM,
		Seed:           seed,
	}
	rep := attackBenchReport{N: n, K: k, Seed: seed, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	fmt.Fprintf(w, "attack benchmark (census N=%d, k=%d, seed=%d, GOMAXPROCS=%d)\n",
		n, k, seed, rep.GOMAXPROCS)

	for _, name := range []string{"datafly", "mondrian"} {
		alg, err := microdata.NewAlgorithm(name)
		if err != nil {
			return err
		}
		r, err := microdata.AnonymizeContext(ctx, alg, tab, cfg)
		if err != nil {
			return err
		}
		row, err := benchProsecutor(ctx, name, tab, r.Table)
		if err != nil {
			return err
		}
		rep.Prosecutor = append(rep.Prosecutor, row)
		fmt.Fprintf(w, "  prosecutor %-10s %6d regions  naive %9.1fms  indexed-serial %8.1fms (%.1fx)  indexed-parallel %8.1fms (%.1fx)\n",
			name, row.Regions, row.NaiveMS, row.IndexedSerialMS, row.SpeedupSerial,
			row.IndexedParallelMS, row.SpeedupParallel)
	}

	jr, err := benchJournalist(ctx, "mondrian", cfg, n, seed)
	if err != nil {
		return err
	}
	rep.Journalist = jr
	fmt.Fprintf(w, "  journalist %-10s sample %d / population %d  naive %9.1fms  indexed %8.1fms (%.1fx)\n",
		jr.Algorithm, jr.N, jr.Population, jr.NaiveMS, jr.IndexedMS, jr.Speedup)

	if out == "" {
		return nil
	}
	if err := writeFileOrStdout(out, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return fmt.Errorf("bench-attack: %w", err)
	}
	if out != "-" {
		fmt.Fprintf(w, "  wrote %s\n", out)
	}
	return nil
}

// benchProsecutor times one release three ways and verifies the indexed
// vectors are element-identical to the naive reference before reporting.
func benchProsecutor(ctx context.Context, name string, tab, anon *microdata.Table) (prosecutorBenchRow, error) {
	row := prosecutorBenchRow{Algorithm: name}

	naiveAdv, err := microdata.NewAdversary(anon, microdata.CensusTaxonomies())
	if err != nil {
		return row, err
	}
	var naiveVec microdata.PropertyVector
	row.NaiveMS, err = timeMS(func() error {
		naiveVec, err = microdata.NaiveProsecutorVector(tab, naiveAdv)
		return err
	})
	if err != nil {
		return row, err
	}

	for _, variant := range []struct {
		workers int
		ms      *float64
	}{{1, &row.IndexedSerialMS}, {0, &row.IndexedParallelMS}} {
		adv, err := microdata.NewAdversary(anon, microdata.CensusTaxonomies())
		if err != nil {
			return row, err
		}
		adv.SetWorkers(variant.workers)
		var vec microdata.PropertyVector
		*variant.ms, err = timeMS(func() error {
			vec, err = microdata.ProsecutorVectorContext(ctx, tab, adv)
			return err
		})
		if err != nil {
			return row, err
		}
		if i := firstDiff(naiveVec, vec); i >= 0 {
			return row, perf.Exit(perf.ExitVerification,
				fmt.Errorf("bench-attack: %s: indexed prosecutor vector (workers=%d) diverges from naive at row %d: %g vs %g",
					name, variant.workers, i, vec[i], naiveVec[i]))
		}
		row.Regions = adv.Stats().Regions
	}
	row.SpeedupSerial = speedup(row.NaiveMS, row.IndexedSerialMS)
	row.SpeedupParallel = speedup(row.NaiveMS, row.IndexedParallelMS)
	return row, nil
}

// benchJournalist times the journalist attack on a capped sample against a
// doubled population, naive vs indexed, verifying equality. The journalist
// model anonymizes the sample itself, so the release here is a fresh
// anonymization of the capped draw rather than the full-table release the
// prosecutor rows use — the naive journalist scan is quadratic in the
// population and uncapped runs would dwarf the rest of the benchmark.
func benchJournalist(ctx context.Context, name string, cfg microdata.AlgorithmConfig, n int, seed int64) (journalistBenchRow, error) {
	m := n
	if m > 2000 {
		m = 2000
	}
	sample, err := microdata.Generate(microdata.GeneratorConfig{N: m, Seed: seed})
	if err != nil {
		return journalistBenchRow{}, err
	}
	alg, err := microdata.NewAlgorithm(name)
	if err != nil {
		return journalistBenchRow{}, err
	}
	r, err := microdata.AnonymizeContext(ctx, alg, sample, cfg)
	if err != nil {
		return journalistBenchRow{}, err
	}
	anon := r.Table
	population := sample.Clone()
	extra, err := microdata.Generate(microdata.GeneratorConfig{N: m, Seed: seed + 1})
	if err != nil {
		return journalistBenchRow{}, err
	}
	population.Rows = append(population.Rows, extra.Rows...)
	row := journalistBenchRow{Algorithm: name, N: m, Population: population.Len()}

	naiveAdv, err := microdata.NewAdversary(anon, microdata.CensusTaxonomies())
	if err != nil {
		return row, err
	}
	var naiveVec microdata.PropertyVector
	row.NaiveMS, err = timeMS(func() error {
		naiveVec, err = microdata.NaiveJournalistVector(sample, population, naiveAdv)
		return err
	})
	if err != nil {
		return row, err
	}

	adv, err := microdata.NewAdversary(anon, microdata.CensusTaxonomies())
	if err != nil {
		return row, err
	}
	var vec microdata.PropertyVector
	row.IndexedMS, err = timeMS(func() error {
		vec, err = microdata.JournalistVectorContext(ctx, sample, population, adv)
		return err
	})
	if err != nil {
		return row, err
	}
	if i := firstDiff(naiveVec, vec); i >= 0 {
		return row, perf.Exit(perf.ExitVerification,
			fmt.Errorf("bench-attack: %s: indexed journalist vector diverges from naive at row %d: %g vs %g",
				name, i, vec[i], naiveVec[i]))
	}
	row.Speedup = speedup(row.NaiveMS, row.IndexedMS)
	return row, nil
}

func timeMS(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return ms(time.Since(start)), err
}

// firstDiff returns the first index where the vectors differ (exact float
// comparison — the indexed pipeline promises identical divisions, not
// merely close ones), or -1 when equal.
func firstDiff(want, got microdata.PropertyVector) int {
	if len(want) != len(got) {
		return 0
	}
	for i := range want {
		if want[i] != got[i] {
			return i
		}
	}
	return -1
}

func speedup(naiveMS, indexedMS float64) float64 {
	if indexedMS <= 0 {
		return 0
	}
	return naiveMS / indexedMS
}
