package main

import (
	"context"
	"fmt"
	"io"

	"microdata/internal/perfsuite"
	"microdata/internal/telemetry/perf"
)

// benchSuite runs the named canonical benchmark suites (-bench-suite) under
// the perf harness and writes the sealed perf pack to out ("-" for stdout).
// The selection is resolved by perfsuite.Resolve ("all" or a comma list of
// suite names); progress lines go to errw so a stdout pack stays parseable.
func benchSuite(ctx context.Context, errw io.Writer, selection, out string, n, k int, seed int64, reps int) error {
	if reps < 1 {
		return perf.Invalidf("bench-reps must be >= 1 (got %d)", reps)
	}
	suites, err := perfsuite.Resolve(selection, perfsuite.Options{N: n, K: k, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "anonbench: running suites %q (n=%d, k=%d, seed=%d, reps=%d)\n",
		selection, n, k, seed, reps)
	pack, err := perf.RunSuites(ctx, suites, perf.Options{
		Reps: reps,
		Log: func(format string, args ...any) {
			fmt.Fprintf(errw, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if err := pack.WriteFile(out); err != nil {
		return fmt.Errorf("bench-out: %w", err)
	}
	if out != "-" {
		fmt.Fprintf(errw, "anonbench: wrote %s (%d benchmarks, digest %s)\n",
			out, len(pack.Benchmarks), pack.Manifest.Digest[:12])
	}
	return nil
}
