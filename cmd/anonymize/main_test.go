package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microdata"
)

func TestRunGenerateToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "anon.csv")
	if err := run("", 150, out, "mondrian", 5, 0.05, 1, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := microdata.ReadCSV(f, microdata.CensusSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 150 {
		t.Fatalf("output has %d rows, want 150", tab.Len())
	}
	p, err := microdata.PartitionTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if microdata.KAnonymity(p) < 5 {
		t.Errorf("output k = %d, want >= 5", microdata.KAnonymity(p))
	}
}

func TestRunFileToFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "census.csv")
	orig, err := microdata.Generate(microdata.GeneratorConfig{N: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := microdata.WriteCSV(f, orig); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "anon.csv")
	if err := run(in, 0, out, "datafly", 3, 0.05, 1, false); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tab, err := microdata.ReadCSV(g, microdata.CensusSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 100 {
		t.Fatalf("output has %d rows", tab.Len())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"no input", func() error { return run("", 0, "", "mondrian", 5, 0.05, 1, false) }},
		{"both inputs", func() error { return run("x.csv", 10, "", "mondrian", 5, 0.05, 1, false) }},
		{"missing file", func() error { return run("/nonexistent.csv", 0, "", "mondrian", 5, 0.05, 1, false) }},
		{"bad algorithm", func() error { return run("", 50, "", "nope", 5, 0.05, 1, false) }},
		{"impossible k", func() error { return run("", 50, "", "mondrian", 500, 0.05, 1, false) }},
		{"unwritable out", func() error { return run("", 50, "/nonexistent-dir/x.csv", "mondrian", 5, 0.05, 1, false) }},
	}
	for _, c := range cases {
		if err := c.err(); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if c.name == "bad algorithm" && !strings.Contains(err.Error(), "unknown algorithm") {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
	}
}
