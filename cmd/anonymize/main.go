// Command anonymize applies a disclosure control algorithm to a census-
// schema CSV (or to a freshly generated synthetic census) and writes the
// anonymized table as CSV.
//
// Usage:
//
//	anonymize -gen 1000 -alg mondrian -k 5 -out anon.csv
//	anonymize -in census.csv -alg samarati -k 10 -sup 0.05 -out anon.csv
//
// The input CSV must use the synthetic census schema (Age, ZipCode,
// Education, MaritalStatus, Disease); generate a template with -gen.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"microdata"
)

func main() {
	var (
		in    = flag.String("in", "", "input CSV (census schema); empty with -gen to synthesize")
		gen   = flag.Int("gen", 0, "generate a synthetic census of this size instead of reading -in")
		out   = flag.String("out", "", "output CSV (default stdout)")
		alg   = flag.String("alg", "mondrian", "algorithm: "+fmt.Sprint(microdata.AlgorithmNames()))
		stats = flag.Bool("stats", false, "print a JSON summary of the release to stderr")
		k     = flag.Int("k", 5, "k-anonymity requirement")
		sup   = flag.Float64("sup", 0.05, "maximum suppression fraction")
		seed  = flag.Int64("seed", 1, "seed for -gen and stochastic algorithms")

		workers = flag.Int("workers", 0, "worker goroutines for the parallel kernels (engine node evaluation, attack shards, morsel-driven group-by); 0 = GOMAXPROCS")

		verbose   = flag.Bool("v", false, "enable debug-level structured logging on stderr")
		logFormat = flag.String("log-format", "", "structured log format: text or json (implies logging even without -v)")
		progress  = flag.Bool("progress", false, "render live progress (done/total, rate, ETA) on stderr")
	)
	flag.Parse()
	microdata.SetDefaultWorkers(*workers)
	if *verbose || *logFormat != "" {
		h, err := microdata.NewLogHandler(os.Stderr, *logFormat, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "anonymize:", err)
			os.Exit(2)
		}
		microdata.SetLogHandler(h)
	}
	if *progress {
		root := microdata.EnableProgress("anonymize")
		defer microdata.DisableProgress()
		r := microdata.NewProgressRenderer(os.Stderr, root, 0)
		defer r.Stop()
	}
	if err := run(*in, *gen, *out, *alg, *k, *sup, *seed, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "anonymize:", err)
		os.Exit(1)
	}
}

func run(in string, gen int, out, algName string, k int, sup float64, seed int64, stats bool) error {
	var tab *microdata.Table
	var err error
	switch {
	case gen > 0 && in != "":
		return fmt.Errorf("-gen and -in are mutually exclusive")
	case gen > 0:
		tab, err = microdata.Generate(microdata.GeneratorConfig{N: gen, Seed: seed})
		if err != nil {
			return err
		}
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		tab, err = microdata.IngestCSVTable(f, microdata.CensusSchema())
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in FILE or -gen N")
	}

	a, err := microdata.NewAlgorithm(algName)
	if err != nil {
		return err
	}
	res, err := microdata.AnonymizeContext(context.Background(), a, tab, microdata.AlgorithmConfig{
		K:              k,
		Hierarchies:    microdata.CensusHierarchies(),
		MaxSuppression: sup,
		Taxonomies:     microdata.CensusTaxonomies(),
		Seed:           seed,
	})
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := microdata.WriteCSV(w, res.Table); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: k=%d classes=%d suppressed=%d\n",
		res.Algorithm, microdata.KAnonymity(res.Partition),
		res.Partition.NumClasses(), len(res.Suppressed))
	if stats {
		ctx, err := microdata.NewMeasureContext(tab, res.Table, microdata.CensusTaxonomies())
		if err != nil {
			return err
		}
		summary, err := microdata.SummarizeRelease(ctx)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			return err
		}
	}
	return nil
}
