// Replay verification: `compare -verify pack.json` re-runs whatever a
// sealed result pack records and diffs the fresh results against the
// recorded ones field-by-field. The pack's source decides the replay
// strategy: census packs regenerate the fingerprinted dataset draw and
// re-run the capture (anonbench's producer), paper packs recompute from
// the embedded tables, files packs re-read the recorded paths after
// checking their fingerprints.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"microdata"
	"microdata/internal/telemetry/perf"
)

// verify replays the sealed pack at path and reports the field-level
// verdict: nil on agreement, ExitVerification (2) when the pack or a
// fingerprinted input was edited after sealing, ExitDrift (5) when the
// replayed results diverge from the recorded ones (the divergences are
// written to errw, one path-level diagnostic per line), ExitInvalid (6)
// for documents this binary cannot replay.
func verify(w, errw io.Writer, path string, ulps uint64) error {
	recorded, err := microdata.ReadResultPack(path)
	if err != nil {
		return err
	}
	replayed, err := replay(recorded)
	if err != nil {
		return err
	}
	divs := microdata.DiffResultPacks(recorded, replayed, microdata.ResultDiffOptions{ULPs: ulps})
	if len(divs) > 0 {
		microdata.WriteResultDivergences(errw, divs)
		return perf.Exit(perf.ExitDrift, fmt.Errorf(
			"%s: replayed results diverge from the recorded ones in %d field(s)", path, len(divs)))
	}
	fmt.Fprintf(w, "verified: %s (source=%s, %s, sha256:%s)\n",
		path, recorded.Source, packShape(recorded), recorded.Manifest.Digest)
	return nil
}

func packShape(p *microdata.ResultPack) string {
	switch p.Source {
	case microdata.ResultPackSourceCensus:
		return fmt.Sprintf("N=%d seed=%d: %d algorithm rows, %d attack rows, %d tables replayed",
			p.Env.N, p.Env.Seed, len(p.Algorithms), len(p.Attack), len(p.Tables))
	default:
		return fmt.Sprintf("%d comparisons replayed", len(p.Comparisons))
	}
}

func replay(p *microdata.ResultPack) (*microdata.ResultPack, error) {
	switch p.Source {
	case microdata.ResultPackSourceCensus:
		return microdata.ReplayResultPack(context.Background(), p)
	case microdata.ResultPackSourcePaper:
		return comparePaper(io.Discard)
	case microdata.ResultPackSourceFiles:
		return replayFiles(p)
	default:
		return nil, perf.Invalidf("pack records unknown source %q", p.Source)
	}
}

// replayFiles re-reads the three recorded CSVs — each must still hash to
// its sealed fingerprint (ExitVerification otherwise) — and re-runs the
// comparison.
func replayFiles(p *microdata.ResultPack) (*microdata.ResultPack, error) {
	paths := map[string]string{}
	for _, f := range p.Files {
		paths[f.Role] = f.Path
		raw, err := os.ReadFile(f.Path)
		if err != nil {
			return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("recorded input: %w", err))
		}
		if got := hashHex(raw); got != f.SHA256 {
			return nil, perf.Exit(perf.ExitVerification, fmt.Errorf(
				"%s (%s input): content hash %s does not match the sealed fingerprint %s",
				f.Path, f.Role, got, f.SHA256))
		}
	}
	for _, role := range []string{"orig", "a", "b"} {
		if paths[role] == "" {
			return nil, perf.Invalidf("files-source pack records no %q input", role)
		}
	}
	return compareFiles(io.Discard, paths["orig"], paths["a"], paths["b"])
}
