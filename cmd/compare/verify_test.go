package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microdata"
	"microdata/internal/telemetry/perf"
)

// writeFilesPack runs a files-mode comparison over generated CSVs and
// seals the verdicts, returning the pack path and the input dir.
func writeFilesPack(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	orig, err := microdata.Generate(microdata.GeneratorConfig{N: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, tab *microdata.Table) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := microdata.WriteCSV(f, tab); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cfg := microdata.AlgorithmConfig{
		K: 4, Hierarchies: microdata.CensusHierarchies(),
		Taxonomies: microdata.CensusTaxonomies(), MaxSuppression: 0.05,
	}
	anonA, err := mustAlg(t, "mondrian").Anonymize(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	anonB, err := mustAlg(t, "datafly").Anonymize(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	origPath := write("orig.csv", orig)
	aPath := write("a.csv", anonA.Table)
	bPath := write("b.csv", anonB.Table)

	packPath := filepath.Join(dir, "pack.json")
	if err := run(io.Discard, origPath, aPath, bPath, false, packPath); err != nil {
		t.Fatal(err)
	}
	return packPath, dir
}

// TestVerifyExitContract pins the acceptance criteria end to end: a clean
// pack verifies (exit 0), flipping any byte of the sealed document fails
// the manifest (exit 2), and perturbing a recorded measure produces a
// divergence (exit 5) whose diagnostic names the field path.
func TestVerifyExitContract(t *testing.T) {
	packPath, _ := writeFilesPack(t)

	// Exit 0: untouched pack replays cleanly.
	var out bytes.Buffer
	if err := verify(&out, io.Discard, packPath, 0); err != nil {
		t.Fatalf("clean pack: %v", err)
	}
	if !strings.Contains(out.String(), "verified: "+packPath) {
		t.Errorf("verify output = %q", out.String())
	}

	raw, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}

	// Exit 2: any flipped byte fails manifest verification before replay.
	tampered := bytes.Replace(raw, []byte(`"wtd":`), []byte(`"wtD":`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found")
	}
	tamperPath := packPath + ".tampered"
	if err := os.WriteFile(tamperPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	err = verify(io.Discard, io.Discard, tamperPath, 0)
	if perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}

	// Exit 5: a perturbed recorded measure survives resealing but diverges
	// on replay, and the diagnostic names the field.
	p, err := microdata.ReadResultPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	recorded := p.Comparisons[0].WTD
	p.Comparisons[0].WTD = "right"
	if p.Comparisons[0].WTD == recorded {
		p.Comparisons[0].WTD = "left"
	}
	p.Manifest = nil
	perturbedPath := packPath + ".perturbed"
	if err := microdata.WriteResultPack(p, perturbedPath); err != nil {
		t.Fatal(err)
	}
	var diag bytes.Buffer
	err = verify(io.Discard, &diag, perturbedPath, 0)
	if perf.ExitCode(err) != perf.ExitDrift {
		t.Fatalf("perturbed pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
	want := "comparisons[" + p.Comparisons[0].Left + " vs " + p.Comparisons[0].Right + "].wtd"
	if !strings.Contains(diag.String(), want) {
		t.Errorf("diagnostic missing path %q:\n%s", want, diag.String())
	}
	if !strings.Contains(diag.String(), `recorded "`+p.Comparisons[0].WTD+`"`) {
		t.Errorf("diagnostic missing recorded value:\n%s", diag.String())
	}

	// Exit 6: documents this binary cannot replay.
	if err := verify(io.Discard, io.Discard, filepath.Join(t.TempDir(), "missing.json"), 0); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("missing pack: %v", err)
	}
	notPack := filepath.Join(t.TempDir(), "not.json")
	if err := os.WriteFile(notPack, []byte(`{"schema":"microdata/perf-pack","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verify(io.Discard, io.Discard, notPack, 0); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("non-result-pack document: %v", err)
	}
}

// TestVerifyDetectsEditedInput pins the files-source tamper path: editing
// a fingerprinted input CSV after sealing is a verification failure (2),
// not a divergence.
func TestVerifyDetectsEditedInput(t *testing.T) {
	packPath, dir := writeFilesPack(t)
	bPath := filepath.Join(dir, "b.csv")
	raw, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	err = verify(io.Discard, io.Discard, packPath, 0)
	if perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("edited input: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	if !strings.Contains(err.Error(), "b.csv") {
		t.Errorf("error should name the edited file: %v", err)
	}
}

// TestVerifyPaperPack round-trips the paper-source pack.
func TestVerifyPaperPack(t *testing.T) {
	packPath := filepath.Join(t.TempDir(), "paper.json")
	if err := run(io.Discard, "", "", "", true, packPath); err != nil {
		t.Fatal(err)
	}
	if err := verify(io.Discard, os.Stderr, packPath, 0); err != nil {
		t.Fatalf("paper pack replay: %v", err)
	}
}

// TestVerifyCensusPack round-trips a small anonbench-produced census
// capture through compare's -verify dispatcher.
func TestVerifyCensusPack(t *testing.T) {
	if testing.Short() {
		t.Skip("full capture replay")
	}
	p, err := microdata.CaptureResultPack(context.Background(), microdata.ResultCaptureConfig{
		Opts:       microdata.ExperimentOptions{CensusN: 150, Ks: []int{2, 5}, Seed: 3},
		Algorithms: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	packPath := filepath.Join(t.TempDir(), "census.json")
	if err := microdata.WriteResultPack(p, packPath); err != nil {
		t.Fatal(err)
	}
	if err := verify(io.Discard, os.Stderr, packPath, 0); err != nil {
		t.Fatalf("census pack replay: %v", err)
	}
}

// TestGoldenCensusPack pins the acceptance contract against the committed
// golden pack: a clean tree replays it to exit 0, flipping any byte exits
// 2, and perturbing a recorded measure exits 5 with a path-level
// diagnostic naming the field. Each replay re-runs the full N=1000
// capture (~15s), so the test is skipped under -short.
func TestGoldenCensusPack(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden-pack replay")
	}
	const golden = "../../results/census-1k.json"
	if _, err := os.Stat(golden); err != nil {
		t.Skipf("golden pack not present: %v", err)
	}

	var out bytes.Buffer
	if err := verify(&out, os.Stderr, golden, 0); err != nil {
		t.Fatalf("clean golden pack: %v", err)
	}
	if !strings.Contains(out.String(), "source=census") {
		t.Errorf("verify output = %q", out.String())
	}

	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the recorded dataset fingerprint (staying valid
	// JSON — syntactically destroyed documents are invalid input, exit 6,
	// not tamper).
	flipped := append([]byte(nil), raw...)
	idx := bytes.Index(flipped, []byte(`"dataset_hash":"`))
	if idx < 0 {
		t.Fatal("dataset_hash not found in golden pack")
	}
	at := idx + len(`"dataset_hash":"`)
	if flipped[at] == 'x' {
		flipped[at] = 'y'
	} else {
		flipped[at] = 'x'
	}
	tamperPath := filepath.Join(t.TempDir(), "tampered.json")
	if err := os.WriteFile(tamperPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	err = verify(io.Discard, io.Discard, tamperPath, 0)
	if perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("flipped byte: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}

	// Perturb one recorded measure and reseal: the manifest verifies, but
	// replay diverges at exactly that field.
	p, err := microdata.ReadResultPack(golden)
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for i, a := range p.Algorithms {
		if a.Failed == "" {
			p.Algorithms[i].Measures["lm"] += 0.001
			target = fmt.Sprintf("algorithms[k=%d/%s].measures.lm", a.K, a.Algorithm)
			break
		}
	}
	p.Manifest = nil
	perturbPath := filepath.Join(t.TempDir(), "perturbed.json")
	if err := microdata.WriteResultPack(p, perturbPath); err != nil {
		t.Fatal(err)
	}
	var diag bytes.Buffer
	err = verify(io.Discard, &diag, perturbPath, 0)
	if perf.ExitCode(err) != perf.ExitDrift {
		t.Fatalf("perturbed measure: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitDrift)
	}
	if !strings.Contains(diag.String(), target) {
		t.Errorf("diagnostic missing path %q:\n%s", target, diag.String())
	}
}
