package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microdata"
)

func TestRunPaperMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "", "", true, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"T_3a vs T_3b",
		"k(T_3a)=3 k(T_3b)=3",
		"right strongly dominates",
		"T_3b vs T_4",
		"incomparable",
		"WTD",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFileMode(t *testing.T) {
	dir := t.TempDir()
	orig, err := microdata.Generate(microdata.GeneratorConfig{N: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, tab *microdata.Table) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := microdata.WriteCSV(f, tab); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cfg := microdata.AlgorithmConfig{
		K: 4, Hierarchies: microdata.CensusHierarchies(),
		Taxonomies: microdata.CensusTaxonomies(), MaxSuppression: 0.05,
	}
	anonA, err := mustAlg(t, "mondrian").Anonymize(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	anonB, err := mustAlg(t, "datafly").Anonymize(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	origPath := write("orig.csv", orig)
	aPath := write("a.csv", anonA.Table)
	bPath := write("b.csv", anonB.Table)

	var buf bytes.Buffer
	if err := run(&buf, origPath, aPath, bPath, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dominance", "privacy cov", "utility cov", "WTD"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func mustAlg(t *testing.T, name string) microdata.Algorithm {
	t.Helper()
	alg, err := microdata.NewAlgorithm(name)
	if err != nil {
		t.Fatal(err)
	}
	return alg
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "", "", false, ""); err == nil {
		t.Error("missing paths should fail")
	}
	if err := run(&buf, "/nonexistent", "/nonexistent", "/nonexistent", false, ""); err == nil {
		t.Error("unreadable files should fail")
	}
}

func TestSide(t *testing.T) {
	if side(microdata.LeftBetter, "a", "b") != "a" ||
		side(microdata.RightBetter, "a", "b") != "b" ||
		side(microdata.Tie, "a", "b") != "tie" {
		t.Error("side mapping wrong")
	}
}
