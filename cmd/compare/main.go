// Command compare evaluates two anonymizations of the same census-schema
// table with the paper's full comparison toolkit: scalar indices, dominance
// relations, the ▶cov/▶spr/▶rank/▶hv comparators on the privacy and
// utility property vectors, and the WTD multi-property verdict. With
// -result-out the verdicts are additionally sealed into a result pack
// (microdata/result-pack v1); with -verify a previously sealed pack is
// replayed against its recorded inputs and diffed field-by-field.
//
// Usage:
//
//	compare -orig census.csv -a mondrian.csv -b datafly.csv
//	compare -paper                         # compare the paper's T_3a, T_3b and T_4
//	compare -paper -result-out paper.json  # seal the verdicts
//	compare -verify results/census-1k.json # replay + diff a sealed pack
//
// Exit codes follow the stable contract shared with anonbench and benchdiff
// (see README "Exit codes"): 0 ok, 1 failure, 2 verification failure (a
// pack or input file edited after sealing), 5 divergence (replayed results
// differ from the recorded ones), 6 invalid input (bad flags, unreadable
// files, tables that don't match the original's size).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"microdata"
	"microdata/internal/telemetry/perf"
)

func main() {
	var (
		orig  = flag.String("orig", "", "original table CSV (census schema)")
		a     = flag.String("a", "", "first anonymization CSV")
		b     = flag.String("b", "", "second anonymization CSV")
		paper = flag.Bool("paper", false, "compare the paper's published tables instead of files")

		resultOut  = flag.String("result-out", "", "write a sealed result pack of the comparison verdicts to this path (\"-\" for stdout)")
		verifyPack = flag.String("verify", "", "replay a sealed result pack and diff it against the fresh results (exit 2 tamper, 5 divergence)")
		ulps       = flag.Uint64("ulps", 0, "ULP tolerance for float fields when diffing a -verify replay (0 = default 4)")

		workers = flag.Int("workers", 0, "worker goroutines for the parallel kernels (group-by, attack shards); 0 = GOMAXPROCS")

		verbose   = flag.Bool("v", false, "enable debug-level structured logging on stderr")
		logFormat = flag.String("log-format", "", "structured log format: text or json (implies logging even without -v)")
		progress  = flag.Bool("progress", false, "render live progress (done/total, rate, ETA) on stderr")
	)
	flag.Parse()
	microdata.SetDefaultWorkers(*workers)
	if *verbose || *logFormat != "" {
		h, err := microdata.NewLogHandler(os.Stderr, *logFormat, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(perf.ExitInvalid)
		}
		microdata.SetLogHandler(h)
	}
	if *progress {
		root := microdata.EnableProgress("compare")
		defer microdata.DisableProgress()
		r := microdata.NewProgressRenderer(os.Stderr, root, 0)
		defer r.Stop()
	}
	var err error
	if *verifyPack != "" {
		err = verify(os.Stdout, os.Stderr, *verifyPack, *ulps)
	} else {
		err = run(os.Stdout, *orig, *a, *b, *paper, *resultOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(perf.ExitCode(err))
	}
}

func run(w io.Writer, origPath, aPath, bPath string, paper bool, resultOut string) error {
	var pack *microdata.ResultPack
	var err error
	if paper {
		pack, err = comparePaper(w)
	} else {
		if origPath == "" || aPath == "" || bPath == "" {
			return perf.Invalidf("need -orig, -a and -b (or -paper, or -verify)")
		}
		pack, err = compareFiles(w, origPath, aPath, bPath)
	}
	if err != nil {
		return err
	}
	if resultOut != "" {
		if err := microdata.WriteResultPack(pack, resultOut); err != nil {
			return err
		}
		if resultOut != "-" {
			fmt.Fprintf(w, "result pack sealed: %s (sha256:%s)\n", resultOut, pack.Manifest.Digest)
		}
	}
	return nil
}

// comparePaper runs the paper's two published comparisons and returns them
// as an unsealed paper-source pack.
func comparePaper(w io.Writer) (*microdata.ResultPack, error) {
	orig := microdata.PaperT1()
	c1, err := comparePair(w, "T_3a", "T_3b", orig, microdata.PaperT3a(), microdata.PaperT3b(), nil)
	if err != nil {
		return nil, err
	}
	c2, err := comparePair(w, "T_3b", "T_4", orig, microdata.PaperT3b(), microdata.PaperT4(), nil)
	if err != nil {
		return nil, err
	}
	return newPack(microdata.ResultPackSourcePaper, []microdata.ResultComparisonRow{c1, c2}, nil), nil
}

// compareFiles compares two anonymization files against the original and
// returns a files-source pack whose fingerprints pin the three inputs.
func compareFiles(w io.Writer, origPath, aPath, bPath string) (*microdata.ResultPack, error) {
	var files []microdata.ResultFileFingerprint
	tabs := make(map[string]*microdata.Table, 3)
	for _, in := range []struct{ role, path string }{{"orig", origPath}, {"a", aPath}, {"b", bPath}} {
		tab, sum, err := readCensus(in.path)
		if err != nil {
			return nil, err
		}
		tabs[in.role] = tab
		files = append(files, microdata.ResultFileFingerprint{Role: in.role, Path: in.path, SHA256: sum})
	}
	c, err := comparePair(w, aPath, bPath, tabs["orig"], tabs["a"], tabs["b"], microdata.CensusTaxonomies())
	if err != nil {
		return nil, err
	}
	p := newPack(microdata.ResultPackSourceFiles, []microdata.ResultComparisonRow{c}, files)
	if p.Env.DatasetHash, err = microdata.TableHash(tabs["orig"]); err != nil {
		return nil, err
	}
	return p, nil
}

func newPack(source string, comparisons []microdata.ResultComparisonRow, files []microdata.ResultFileFingerprint) *microdata.ResultPack {
	return &microdata.ResultPack{
		Schema:        microdata.ResultPackSchema,
		Version:       microdata.ResultPackVersion,
		Source:        source,
		CreatedUnixMS: time.Now().UnixMilli(),
		Env:           perf.CaptureEnv(),
		Comparisons:   comparisons,
		Files:         files,
	}
}

// readCensus reads a census-schema CSV and fingerprints its raw bytes.
func readCensus(path string) (*microdata.Table, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", perf.Exit(perf.ExitInvalid, err)
	}
	t, err := microdata.ReadCSV(bytes.NewReader(raw), microdata.CensusSchema())
	if err != nil {
		return nil, "", perf.Exit(perf.ExitInvalid, fmt.Errorf("%s: %w", path, err))
	}
	return t, hashHex(raw), nil
}

// hashHex fingerprints a file's raw bytes the way result packs record them.
func hashHex(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// comparePair writes the human comparison report for one pair and returns
// the same verdicts as a result-pack row (side-neutral "left"/"right"/
// "tie" words, so the row is independent of the display names).
func comparePair(w io.Writer, nameA, nameB string, orig, ta, tb *microdata.Table, taxonomies map[string]*microdata.Taxonomy) (microdata.ResultComparisonRow, error) {
	row := microdata.ResultComparisonRow{Left: nameA, Right: nameB, Privacy: map[string]string{}}
	if ta.Len() != orig.Len() || tb.Len() != orig.Len() {
		return row, perf.Invalidf("tables must have the original's size (suppressed tuples stay as '*')")
	}
	pa, err := microdata.PartitionTable(ta)
	if err != nil {
		return row, err
	}
	pb, err := microdata.PartitionTable(tb)
	if err != nil {
		return row, err
	}
	privA := microdata.PropertyVector(microdata.ClassSizeVector(pa))
	privB := microdata.PropertyVector(microdata.ClassSizeVector(pb))
	lossCfg := microdata.LossConfig{Taxonomies: taxonomies}
	utilA, err := microdata.UtilityVector(ta, orig, lossCfg)
	if err != nil {
		return row, err
	}
	utilB, err := microdata.UtilityVector(tb, orig, lossCfg)
	if err != nil {
		return row, err
	}

	row.KLeft, row.KRight = microdata.KAnonymity(pa), microdata.KAnonymity(pb)
	fmt.Fprintf(w, "=== %s vs %s ===\n", nameA, nameB)
	fmt.Fprintf(w, "scalar view: k(%s)=%d k(%s)=%d\n", nameA, row.KLeft, nameB, row.KRight)

	rel, err := microdata.CompareVectors(privA, privB)
	if err != nil {
		return row, err
	}
	row.Dominance = fmt.Sprint(rel)
	fmt.Fprintf(w, "dominance (privacy vectors): %v\n", rel)

	n := orig.Len()
	dmax := make(microdata.PropertyVector, n)
	for i := range dmax {
		dmax[i] = float64(n)
	}
	comparators := []microdata.Comparator{
		microdata.MinBetter(),
		microdata.CovBetter(),
		microdata.SprBetter(),
		microdata.RankComparator{Dmax: dmax},
		microdata.HvLogBetter(),
	}
	for _, c := range comparators {
		out, err := c.Compare(privA, privB)
		if err != nil {
			fmt.Fprintf(w, "privacy %-6s error: %v\n", c.Name(), err)
			row.Privacy[c.Name()] = "error"
			continue
		}
		row.Privacy[c.Name()] = word(out)
		fmt.Fprintf(w, "privacy %-6s %s\n", c.Name()+":", side(out, nameA, nameB))
	}
	covU, err := microdata.CovBetter().Compare(microdata.PropertyVector(utilA), microdata.PropertyVector(utilB))
	if err != nil {
		return row, err
	}
	row.UtilityCov = word(covU)
	fmt.Fprintf(w, "utility cov:    %s\n", side(covU, nameA, nameB))

	wtd, err := microdata.NewWTD([]float64{0.5, 0.5}, []microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	if err != nil {
		return row, err
	}
	verdict, err := wtd.Compare(
		microdata.PropertySet{privA, utilA},
		microdata.PropertySet{privB, utilB},
	)
	if err != nil {
		return row, err
	}
	row.WTD = word(verdict)
	fmt.Fprintf(w, "WTD (privacy+utility, equal weights): %s\n\n", side(verdict, nameA, nameB))
	return row, nil
}

func side(o microdata.Outcome, a, b string) string {
	switch o {
	case microdata.LeftBetter:
		return a
	case microdata.RightBetter:
		return b
	default:
		return "tie"
	}
}

// word is side with the neutral names result packs record.
func word(o microdata.Outcome) string { return side(o, "left", "right") }
