// Command compare evaluates two anonymizations of the same census-schema
// table with the paper's full comparison toolkit: scalar indices, dominance
// relations, the ▶cov/▶spr/▶rank/▶hv comparators on the privacy and
// utility property vectors, and the WTD multi-property verdict.
//
// Usage:
//
//	compare -orig census.csv -a mondrian.csv -b datafly.csv
//	compare -paper            # compare the paper's T_3a, T_3b and T_4
//
// Exit codes follow the stable contract shared with anonbench and benchdiff
// (see README "Exit codes"): 0 ok, 1 failure, 6 invalid input (bad flags,
// unreadable files, tables that don't match the original's size).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"microdata"
	"microdata/internal/telemetry/perf"
)

func main() {
	var (
		orig  = flag.String("orig", "", "original table CSV (census schema)")
		a     = flag.String("a", "", "first anonymization CSV")
		b     = flag.String("b", "", "second anonymization CSV")
		paper = flag.Bool("paper", false, "compare the paper's published tables instead of files")

		workers = flag.Int("workers", 0, "worker goroutines for the parallel kernels (group-by, attack shards); 0 = GOMAXPROCS")

		verbose   = flag.Bool("v", false, "enable debug-level structured logging on stderr")
		logFormat = flag.String("log-format", "", "structured log format: text or json (implies logging even without -v)")
		progress  = flag.Bool("progress", false, "render live progress (done/total, rate, ETA) on stderr")
	)
	flag.Parse()
	microdata.SetDefaultWorkers(*workers)
	if *verbose || *logFormat != "" {
		h, err := microdata.NewLogHandler(os.Stderr, *logFormat, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(perf.ExitInvalid)
		}
		microdata.SetLogHandler(h)
	}
	if *progress {
		root := microdata.EnableProgress("compare")
		defer microdata.DisableProgress()
		r := microdata.NewProgressRenderer(os.Stderr, root, 0)
		defer r.Stop()
	}
	if err := run(os.Stdout, *orig, *a, *b, *paper); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(perf.ExitCode(err))
	}
}

func run(w io.Writer, origPath, aPath, bPath string, paper bool) error {
	if paper {
		orig := microdata.PaperT1()
		if err := comparePair(w, "T_3a", "T_3b", orig, microdata.PaperT3a(), microdata.PaperT3b(), nil); err != nil {
			return err
		}
		return comparePair(w, "T_3b", "T_4", orig, microdata.PaperT3b(), microdata.PaperT4(), nil)
	}
	if origPath == "" || aPath == "" || bPath == "" {
		return perf.Invalidf("need -orig, -a and -b (or -paper)")
	}
	orig, err := readCensus(origPath)
	if err != nil {
		return err
	}
	ta, err := readCensus(aPath)
	if err != nil {
		return err
	}
	tb, err := readCensus(bPath)
	if err != nil {
		return err
	}
	return comparePair(w, aPath, bPath, orig, ta, tb, microdata.CensusTaxonomies())
}

func readCensus(path string) (*microdata.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, perf.Exit(perf.ExitInvalid, err)
	}
	defer f.Close()
	t, err := microdata.ReadCSV(f, microdata.CensusSchema())
	if err != nil {
		return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("%s: %w", path, err))
	}
	return t, nil
}

func comparePair(w io.Writer, nameA, nameB string, orig, ta, tb *microdata.Table, taxonomies map[string]*microdata.Taxonomy) error {
	if ta.Len() != orig.Len() || tb.Len() != orig.Len() {
		return perf.Invalidf("tables must have the original's size (suppressed tuples stay as '*')")
	}
	pa, err := microdata.PartitionTable(ta)
	if err != nil {
		return err
	}
	pb, err := microdata.PartitionTable(tb)
	if err != nil {
		return err
	}
	privA := microdata.PropertyVector(microdata.ClassSizeVector(pa))
	privB := microdata.PropertyVector(microdata.ClassSizeVector(pb))
	lossCfg := microdata.LossConfig{Taxonomies: taxonomies}
	utilA, err := microdata.UtilityVector(ta, orig, lossCfg)
	if err != nil {
		return err
	}
	utilB, err := microdata.UtilityVector(tb, orig, lossCfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "=== %s vs %s ===\n", nameA, nameB)
	fmt.Fprintf(w, "scalar view: k(%s)=%d k(%s)=%d\n", nameA, microdata.KAnonymity(pa), nameB, microdata.KAnonymity(pb))

	rel, err := microdata.CompareVectors(privA, privB)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dominance (privacy vectors): %v\n", rel)

	n := orig.Len()
	dmax := make(microdata.PropertyVector, n)
	for i := range dmax {
		dmax[i] = float64(n)
	}
	comparators := []microdata.Comparator{
		microdata.MinBetter(),
		microdata.CovBetter(),
		microdata.SprBetter(),
		microdata.RankComparator{Dmax: dmax},
		microdata.HvLogBetter(),
	}
	for _, c := range comparators {
		out, err := c.Compare(privA, privB)
		if err != nil {
			fmt.Fprintf(w, "privacy %-6s error: %v\n", c.Name(), err)
			continue
		}
		fmt.Fprintf(w, "privacy %-6s %s\n", c.Name()+":", side(out, nameA, nameB))
	}
	covU, err := microdata.CovBetter().Compare(microdata.PropertyVector(utilA), microdata.PropertyVector(utilB))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "utility cov:    %s\n", side(covU, nameA, nameB))

	wtd, err := microdata.NewWTD([]float64{0.5, 0.5}, []microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	if err != nil {
		return err
	}
	verdict, err := wtd.Compare(
		microdata.PropertySet{privA, utilA},
		microdata.PropertySet{privB, utilB},
	)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "WTD (privacy+utility, equal weights): %s\n\n", side(verdict, nameA, nameB))
	return nil
}

func side(o microdata.Outcome, a, b string) string {
	switch o {
	case microdata.LeftBetter:
		return a
	case microdata.RightBetter:
		return b
	default:
		return "tie"
	}
}
