// Package microdata is a library for microdata disclosure control and for
// the vector-based comparison of anonymization algorithms, reproducing
// Dewri, Ray, Ray & Whitley, "On the Comparison of Microdata Disclosure
// Control Algorithms" (EDBT 2009).
//
// The library has three layers:
//
//   - substrates: typed microdata tables (Table, Schema, Value),
//     generalization hierarchies (Hierarchy, Taxonomy, Intervals,
//     PrefixMask), the full-domain generalization lattice, equivalence
//     classes, privacy models (k-anonymity, ℓ-diversity, t-closeness,
//     p-sensitive, personalized) and utility metrics (LM, DM, C_avg, Prec);
//
//   - the paper's comparison framework: PropertyVector, dominance
//     relations, unary/binary quality indices (PKAnon, PSAvg, PCov, PSpr,
//     PHv, PRank, ...), ▶-better comparators and the multi-property
//     preference schemes WTD, LEX and GOAL;
//
//   - disclosure control algorithms rebuilt from the literature: Datafly,
//     Samarati, Incognito (direct and two-phase subset sweeps), optimal
//     lattice search, Mondrian (strict and relaxed), μ-Argus, an
//     Iyengar-style genetic algorithm, top-down specialization and
//     bottom-up generalization — all satisfying one Algorithm interface,
//     all optionally enforcing ℓ-diversity / t-closeness alongside k —
//     plus the paper's §7 extension: multi-objective Pareto exploration
//     with privacy as a vector-derived objective, a record-linkage attack
//     simulator, and a COUNT-query workload evaluator.
//
// The exported names below alias the internal implementation packages, so
// this package is the single import needed by downstream users:
//
//	t, _ := microdata.Generate(microdata.GeneratorConfig{N: 1000, Seed: 1})
//	alg, _ := microdata.NewAlgorithm("mondrian")
//	res, _ := alg.Anonymize(t, microdata.AlgorithmConfig{
//	    K: 5, Hierarchies: microdata.CensusHierarchies(),
//	})
//	vec := microdata.ClassSizeVector(res.Partition)
package microdata

import (
	"context"
	"fmt"
	"io"
	"sort"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/bottomup"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/genetic"
	"microdata/internal/algorithm/incognito"
	"microdata/internal/algorithm/moga"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/algorithm/muargus"
	"microdata/internal/algorithm/ola"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/algorithm/samarati"
	"microdata/internal/algorithm/topdown"
	"microdata/internal/attack"
	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/eqclass"
	"microdata/internal/experiment"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/kernels"
	"microdata/internal/lattice"
	"microdata/internal/measure"
	"microdata/internal/paperdata"
	"microdata/internal/perfsuite"
	"microdata/internal/privacy"
	"microdata/internal/stats"
	"microdata/internal/telemetry"
	"microdata/internal/telemetry/debugserver"
	"microdata/internal/telemetry/export"
	"microdata/internal/telemetry/ledger"
	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/progress"
	"microdata/internal/telemetry/report"
	"microdata/internal/telemetry/resultpack"
	"microdata/internal/utility"
	"microdata/internal/workload"
)

// Data substrate.
type (
	// Table is a microdata table (schema + rows).
	Table = dataset.Table
	// Schema describes the attributes of a table.
	Schema = dataset.Schema
	// Attribute is one column description.
	Attribute = dataset.Attribute
	// Value is one table cell (exact, interval, prefix, set or star).
	Value = dataset.Value
	// Role classifies attributes (quasi-identifier, sensitive, ...).
	Role = dataset.Role
	// AttrKind is an attribute's ground domain (categorical or numeric).
	AttrKind = dataset.AttrKind
	// Column is one dictionary-encoded column vector (codes + dictionary).
	Column = dataset.Column
	// Float64Column is the typed, non-dictionary numeric column: the fast
	// path for high-cardinality numeric attributes, with worker-sharded
	// min/max/sum reductions and the fractional-rank kernel.
	Float64Column = dataset.Float64Column
	// Int64Column is the exact-integer typed-column sibling.
	Int64Column = dataset.Int64Column
	// Columnar is a column-oriented table under construction or backing a Table.
	Columnar = dataset.Columnar
	// CSVIngester parses CSV fed in arbitrary chunks straight into columns.
	CSVIngester = dataset.CSVIngester
)

// Attribute roles and kinds.
const (
	Insensitive     = dataset.Insensitive
	QuasiIdentifier = dataset.QuasiIdentifier
	Sensitive       = dataset.Sensitive
	Categorical     = dataset.Categorical
	Numeric         = dataset.Numeric
)

// Value constructors and table helpers re-exported from the dataset layer.
var (
	NewSchema   = dataset.NewSchema
	MustSchema  = dataset.MustSchema
	NewTable    = dataset.NewTable
	NumVal      = dataset.NumVal
	StrVal      = dataset.StrVal
	IntervalVal = dataset.IntervalVal
	PrefixVal   = dataset.PrefixVal
	SetVal      = dataset.SetVal
	StarVal     = dataset.StarVal
	ReadCSV     = dataset.ReadCSV
	WriteCSV    = dataset.WriteCSV

	NewColumnar     = dataset.NewColumnar
	ReadCSVColumnar = dataset.ReadCSVColumnar
	NewCSVIngester  = dataset.NewCSVIngester
	IngestCSV       = dataset.IngestCSV
	IngestCSVTable  = dataset.IngestCSVTable
	Float64ColumnOf = dataset.Float64ColumnOf
	Int64ColumnOf   = dataset.Int64ColumnOf
)

// Parallel-kernel sizing: the module-wide worker-count knob every parallel
// path reads unless explicitly sized (engine WithWorkers / Config.Workers,
// attack SetWorkers). The CLIs thread their shared -workers flag here.
var (
	SetDefaultWorkers = kernels.SetDefaultWorkers
	DefaultWorkers    = kernels.DefaultWorkers
)

// Hierarchies.
type (
	// Hierarchy generalizes one attribute's values over discrete levels.
	Hierarchy = hierarchy.Hierarchy
	// HierarchySet maps attribute names to hierarchies.
	HierarchySet = hierarchy.Set
	// Taxonomy generalizes categorical values through a tree.
	Taxonomy = hierarchy.Taxonomy
	// TaxonomyNode is a node of a taxonomy literal.
	TaxonomyNode = hierarchy.Node
	// Intervals generalizes numeric values through anchored ladders.
	Intervals = hierarchy.Intervals
	// IntervalLevel is one rung of an interval ladder.
	IntervalLevel = hierarchy.IntervalLevel
	// PrefixMask generalizes fixed-length codes by masking characters.
	PrefixMask = hierarchy.PrefixMask
)

// Hierarchy constructors.
var (
	NewTaxonomy      = hierarchy.NewTaxonomy
	MustTaxonomy     = hierarchy.MustTaxonomy
	TaxNode          = hierarchy.N
	NewIntervals     = hierarchy.NewIntervals
	MustIntervals    = hierarchy.MustIntervals
	NewPrefixMask    = hierarchy.NewPrefixMask
	MustPrefixMask   = hierarchy.MustPrefixMask
	NewSuppression   = hierarchy.NewSuppression
	NewHierarchySet  = hierarchy.NewSet
	MustHierarchySet = hierarchy.MustSet
	GeneralizeTable  = hierarchy.GeneralizeTable
	ParseTaxonomy    = hierarchy.ParseTaxonomy
	WriteTaxonomy    = hierarchy.WriteTaxonomy
)

// Lattice.
type (
	// LatticeNode is a vector of per-attribute generalization levels.
	LatticeNode = lattice.Node
	// Lattice is the full-domain generalization lattice.
	Lattice = lattice.Lattice
)

// NewLattice builds a lattice from per-attribute maximum levels.
var NewLattice = lattice.New

// Equivalence classes and privacy models.
type (
	// Partition groups table rows into equivalence classes.
	Partition = eqclass.Partition
	// GuardingNode is a personalized privacy requirement (Xiao–Tao).
	GuardingNode = privacy.GuardingNode
)

// Partitioning and privacy measurements.
var (
	PartitionTable           = eqclass.FromTable
	PartitionCodes           = eqclass.FromCodes
	PartitionCodesSequential = eqclass.FromCodesSequential
	PartitionCodesParallel   = eqclass.FromCodesParallel
	KAnonymity               = privacy.KAnonymity
	IsKAnonymous             = privacy.IsKAnonymous
	ClassSizeVector          = privacy.ClassSizeVector
	DistinctLDiversity       = privacy.DistinctLDiversity
	IsDistinctLDiverse       = privacy.IsDistinctLDiverse
	EntropyLDiversity        = privacy.EntropyLDiversity
	RecursiveCLDiversity     = privacy.RecursiveCLDiversity
	SensitiveCountVector     = privacy.SensitiveCountVector
	DistinctCountVector      = privacy.DistinctCountVector
	TCloseness               = privacy.TCloseness
	IsTClose                 = privacy.IsTClose
	TClosenessVector         = privacy.TClosenessVector
	IsPSensitiveKAnonymous   = privacy.IsPSensitiveKAnonymous
	BreachProbabilityVector  = privacy.BreachProbabilityVector
	ReidentificationVector   = privacy.ReidentificationVector
	PersonalizedBreachVector = privacy.PersonalizedBreachVector
	PersonalizedSatisfied    = privacy.PersonalizedSatisfied
)

// Utility metrics.
type (
	// LossConfig carries taxonomy context for loss computation.
	LossConfig = utility.LossConfig
)

// Utility measurements.
var (
	LossVector             = utility.LossVector
	UtilityVector          = utility.UtilityVector
	GeneralLossMetric      = utility.GeneralLossMetric
	DiscernibilityMetric   = utility.DiscernibilityMetric
	DiscernibilityVector   = utility.DiscernibilityVector
	AverageClassSizeMetric = utility.AverageClassSizeMetric
	Precision              = utility.Precision
)

// The comparison framework (the paper's contribution).
type (
	// PropertyVector measures a property per tuple (Definition 1).
	PropertyVector = core.PropertyVector
	// PropertySet is the r vectors of an r-property anonymization.
	PropertySet = core.PropertySet
	// Relation classifies a dominance comparison (Table 4).
	Relation = core.Relation
	// Outcome is a ▶-better comparison verdict.
	Outcome = core.Outcome
	// UnaryIndex is a 1-ary quality index (Definition 3).
	UnaryIndex = core.UnaryIndex
	// BinaryIndex is a 2-ary quality index (Definition 3).
	BinaryIndex = core.BinaryIndex
	// Comparator is a ▶-better comparator over property vectors.
	Comparator = core.Comparator
	// SetComparator compares property-vector sets (WTD, LEX, GOAL).
	SetComparator = core.SetComparator
	// RankComparator is the §5.1 ▶rank comparator.
	RankComparator = core.RankBetter
	// IndexPanel is a vector of unary indices (Theorem 1).
	IndexPanel = core.Panel
	// Norm selects the distance used by the rank comparator.
	Norm = core.Norm
	// TournamentResult ranks a field of anonymizations by pairwise wins.
	TournamentResult = core.TournamentResult
)

// Rank-distance norms.
const (
	L2   = core.L2
	L1   = core.L1
	LInf = core.LInf
)

// Dominance relations and outcomes.
const (
	Incomparable   = core.Incomparable
	EqualVectors   = core.EqualVectors
	LeftDominates  = core.LeftDominates
	RightDominates = core.RightDominates
	Tie            = core.Tie
	LeftBetter     = core.LeftBetter
	RightBetter    = core.RightBetter
)

// Comparison machinery.
var (
	WeaklyDominates             = core.WeaklyDominates
	StronglyDominates           = core.StronglyDominates
	CompareVectors              = core.Compare
	WeaklyDominatesSet          = core.WeaklyDominatesSet
	StronglyDominatesSet        = core.StronglyDominatesSet
	EvalUnary                   = core.EvalUnary
	EvalBinary                  = core.EvalBinary
	PKAnon                      = core.PKAnon
	PSAvg                       = core.PSAvg
	PLDiv                       = core.PLDiv
	PMax                        = core.PMax
	PSum                        = core.PSum
	PMedian                     = core.PMedian
	PRank                       = core.PRank
	PRankWith                   = core.PRankWith
	PBinary                     = core.PBinary
	PCov                        = core.PCov
	PSpr                        = core.PSpr
	PHv                         = core.PHv
	PHvLog                      = core.PHvLog
	CovBetter                   = core.CovBetter
	SprBetter                   = core.SprBetter
	HvBetter                    = core.HvBetter
	HvLogBetter                 = core.HvLogBetter
	MinBetter                   = core.MinBetter
	NewWTD                      = core.NewWTD
	NewLEX                      = core.NewLEX
	NewGOAL                     = core.NewGOAL
	NormalizeTogether           = core.NormalizeTogether
	StandardPanel               = core.StandardPanel
	ProjectionPanel             = core.ProjectionPanel
	FindDominanceCounterexample = core.FindDominanceCounterexample
	EntropyL                    = core.EntropyL
	Tournament                  = core.Tournament
	TournamentSets              = core.TournamentSets
)

// Algorithms.
type (
	// Algorithm is a disclosure control algorithm.
	Algorithm = algorithm.Algorithm
	// AlgorithmConfig parameterizes an anonymization run.
	AlgorithmConfig = algorithm.Config
	// AlgorithmResult is an anonymization outcome.
	AlgorithmResult = algorithm.Result
	// Metric selects the utility objective of a searching algorithm.
	Metric = algorithm.Metric
)

// Utility metrics for search.
const (
	MetricLM   = algorithm.MetricLM
	MetricDM   = algorithm.MetricDM
	MetricPrec = algorithm.MetricPrec
)

// ResultCost scores a finished result under a config's metric.
var ResultCost = algorithm.ResultCost

// Shared lattice-node evaluation engine. Global-recoding algorithms
// evaluate lattice nodes through one Engine per search: generalization
// maps are precomputed once, evaluations are memoized in a bounded LRU
// cache, batches run on a worker pool, and everything honors a
// context.Context.
type (
	// Engine evaluates lattice nodes for one (table, config) pair.
	Engine = engine.Engine
	// EngineOption customizes an engine (cache size, worker count).
	EngineOption = engine.Option
	// EngineEvaluation is one memoized node evaluation (partition,
	// constraint verdict, lazily computed cost).
	EngineEvaluation = engine.Evaluation
	// EngineStats is a snapshot of the engine's evaluation counters.
	EngineStats = engine.Stats
	// EngineCanceled reports a cancelled search; it wraps the context's
	// error and carries the partial EngineStats.
	EngineCanceled = engine.Canceled
	// ContextAlgorithm is implemented by algorithms whose searches honor
	// a cancellation context.
	ContextAlgorithm = algorithm.ContextAlgorithm
)

// Engine constructors and the context-aware anonymization entry point.
var (
	NewEngine           = engine.New
	WithEngineCacheSize = engine.WithCacheSize
	WithEngineWorkers   = engine.WithWorkers
	AnonymizeContext    = algorithm.AnonymizeContext
)

// Multi-objective exploration (the paper's §7 proposed extension).
type (
	// ParetoObjectives is a (privacy rank, loss) objective pair.
	ParetoObjectives = moga.Objectives
	// ParetoPoint is a lattice node with its objectives.
	ParetoPoint = moga.Point
	// ParetoFront is a set of mutually non-dominated points.
	ParetoFront = moga.Front
	// NSGA2 searches large lattices for the Pareto front.
	NSGA2 = moga.NSGA2
)

// Pareto-front search and scoring.
var (
	ExhaustiveParetoFront = moga.ExhaustiveFront
	ParetoCoverage        = moga.Coverage
)

// NewAlgorithm builds a registered disclosure control algorithm by name.
// See AlgorithmNames for the roster.
func NewAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "bottomup":
		return bottomup.New(), nil
	case "datafly":
		return datafly.New(), nil
	case "samarati":
		return samarati.New(), nil
	case "incognito":
		return incognito.New(), nil
	case "ola":
		return ola.New(), nil
	case "optimal":
		return optimal.New(), nil
	case "mondrian":
		return mondrian.New(), nil
	case "mondrian-relaxed":
		return mondrian.NewRelaxed(), nil
	case "mu-argus":
		return muargus.New(), nil
	case "genetic":
		return genetic.New(), nil
	case "genetic-constrained":
		return genetic.NewConstrained(), nil
	case "topdown":
		return topdown.New(), nil
	default:
		return nil, fmt.Errorf("microdata: unknown algorithm %q (known: %v)", name, AlgorithmNames())
	}
}

// AlgorithmNames lists the registered algorithms.
func AlgorithmNames() []string {
	names := []string{
		"bottomup", "datafly", "samarati", "incognito", "optimal", "mondrian",
		"mondrian-relaxed", "mu-argus", "ola", "genetic", "genetic-constrained",
		"topdown",
	}
	sort.Strings(names)
	return names
}

// Synthetic census generator.
type (
	// GeneratorConfig parameterizes the synthetic census draw.
	GeneratorConfig = generator.Config
)

// Census data and hierarchies.
var (
	Generate          = generator.Generate
	CensusSchema      = generator.Schema
	CensusHierarchies = generator.Hierarchies
	CensusTaxonomies  = generator.Taxonomies
	CensusGuards      = generator.Guards
	DiseaseTaxonomy   = generator.DiseaseTaxonomy
)

// Paper fixtures (Tables 1–3 and the quoted vectors).
var (
	PaperT1          = paperdata.T1
	PaperT3a         = paperdata.T3a
	PaperT3b         = paperdata.T3b
	PaperT4          = paperdata.T4
	PaperSchema      = paperdata.Schema
	PaperHierarchies = paperdata.Hierarchies
	PaperSensitive   = paperdata.SensitiveColumn
)

// Attack simulation: record-linkage re-identification risk (§2).
type (
	// Adversary links ground quasi-identifiers against an anonymized table
	// through a region index, memoizing victim tuples and caching the
	// prosecutor vector.
	Adversary = attack.Adversary
	// AttackStats snapshots the adversary's indexing and cache counters.
	AttackStats = attack.Stats
)

// Attack constructors and risk measures. The Context variants accept a
// context.Context for cancellation of the parallel fan-out; the Naive
// variants are the serial row-scanning references the indexed pipeline is
// cross-validated against.
var (
	NewAdversary            = attack.NewAdversary
	ProsecutorVector        = attack.ProsecutorVector
	ProsecutorVectorContext = attack.ProsecutorVectorContext
	JournalistVector        = attack.JournalistVector
	JournalistVectorContext = attack.JournalistVectorContext
	AttackSafety            = attack.SafetyVector
	MarketerRisk            = attack.MarketerRisk
	TargetedRisk            = attack.TargetedRisk
	TargetedRiskContext     = attack.TargetedRiskContext
	NaiveProsecutorVector   = attack.NaiveProsecutorVector
	NaiveJournalistVector   = attack.NaiveJournalistVector
)

// Query-workload utility evaluation (the LeFevre §6 view).
type (
	// WorkloadQuery is a conjunctive COUNT query.
	WorkloadQuery = workload.Query
	// WorkloadPredicate restricts one quasi-identifier.
	WorkloadPredicate = workload.Predicate
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = workload.Config
	// WorkloadReport summarizes query-answering accuracy.
	WorkloadReport = workload.Report
	// WorkloadEstimator answers queries under the uniformity assumption.
	WorkloadEstimator = workload.Estimator
)

// Workload generation and evaluation.
var (
	GenerateWorkload     = workload.Generate
	TrueCount            = workload.TrueCount
	NewWorkloadEstimator = workload.NewEstimator
	EvaluateWorkload     = workload.Evaluate
)

// Measurement layer: r-property anonymizations (Definition 2) as a
// catalogue of named per-tuple property extractors.
type (
	// MeasureContext pairs an original table with one anonymization.
	MeasureContext = measure.Context
	// MeasuredProperty is one named per-tuple property extractor.
	MeasuredProperty = measure.Property
	// ReleaseSummary is the JSON-ready scalar digest of an anonymization.
	ReleaseSummary = measure.Summary
)

// Property extractors and the Measure bundler.
var (
	NewMeasureContext    = measure.NewContext
	Measure              = measure.Measure
	SummarizeRelease     = measure.Summarize
	PropClassSize        = measure.ClassSize
	PropSensitiveCount   = measure.SensitiveCount
	PropDistinct         = measure.DistinctSensitive
	PropBreachSafety     = measure.BreachSafety
	PropTClosenessSafety = measure.TClosenessSafety
	PropRetainedInfo     = measure.RetainedInformation
	PropDiscernibility   = measure.Discernibility
)

// Bias statistics.
type (
	// BiasSummary is the descriptive-statistics bundle for a vector.
	BiasSummary = stats.Summary
)

// Summary statistics for property vectors.
var (
	Summarize = stats.Summarize
	Gini      = stats.Gini
)

// Experiments.
type (
	// ExperimentOptions tunes the scaled experiments.
	ExperimentOptions = experiment.Options
)

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	ID, Title, Artifact string
}

// Experiments lists the registered experiments in order.
func Experiments(opts ExperimentOptions) []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiment.Registry(opts) {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Artifact: e.Artifact})
	}
	return out
}

// RunExperiment executes one of the paper-reproduction experiments
// (E1–E18) and writes its report.
func RunExperiment(w io.Writer, id string, opts ExperimentOptions) error {
	return experiment.RunByID(w, id, opts)
}

// RunAllExperiments executes every experiment in order.
func RunAllExperiments(w io.Writer, opts ExperimentOptions) error {
	return experiment.RunAll(w, opts)
}

// RunExperimentContext is RunExperiment honoring a context; the experiment
// runs under a telemetry span.
func RunExperimentContext(ctx context.Context, w io.Writer, id string, opts ExperimentOptions) error {
	return experiment.RunByIDContext(ctx, w, id, opts)
}

// RunAllExperimentsContext is RunAllExperiments honoring a context.
func RunAllExperimentsContext(ctx context.Context, w io.Writer, opts ExperimentOptions) error {
	return experiment.RunAllContext(ctx, w, opts)
}

// Observability (internal/telemetry): hierarchical tracing spans, a
// concurrency-safe metrics registry, and structured logging on log/slog.
// Telemetry is disabled by default (a disabled span site costs ~1–2 ns);
// installing a collector with SetTelemetryCollector turns on span
// recording and process-wide metric aggregation. See README "Observability".
type (
	// TelemetryCollector bundles a span tracer and a process-wide
	// metrics registry.
	TelemetryCollector = telemetry.Collector
	// TelemetryOption configures a collector (e.g. WithTelemetryClock).
	TelemetryOption = telemetry.CollectorOption
	// Span is one timed operation in a trace tree.
	Span = telemetry.Span
	// SpanAttr is a key/value span annotation.
	SpanAttr = telemetry.Attr
	// Tracer records finished spans and exports Chrome trace_event JSON.
	Tracer = telemetry.Tracer
	// MetricsRegistry holds named counters, gauges and histograms.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a JSON-ready point-in-time registry view.
	MetricsSnapshot = telemetry.Snapshot
)

// Live observability surface (internal/telemetry/{progress,export,
// debugserver,report}): hierarchical progress trackers with smoothed ETAs
// and an ANSI renderer, Prometheus text exposition over the metrics
// registry, an embeddable HTTP debug server (/metrics, /debug/pprof/*,
// /healthz, /progress, /runinfo), and the unified versioned JSON run
// report. See README "Live observability".
type (
	// ProgressTracker counts done/total work units with a smoothed ETA;
	// nil trackers are no-ops, so instrumentation sites need no guards.
	ProgressTracker = progress.Tracker
	// ProgressNode is a JSON-ready snapshot of a tracker subtree.
	ProgressNode = progress.Node
	// ProgressRenderer redraws a tracker tree on an ANSI terminal.
	ProgressRenderer = progress.Renderer
	// DebugServer is the embedded HTTP observability endpoint.
	DebugServer = debugserver.Server
	// RunReport is the unified versioned JSON run report (-report).
	RunReport = report.Report
	// RunReportBuilder accumulates a run's identity for a RunReport.
	RunReportBuilder = report.Builder
)

// RunReportSchema and RunReportVersion identify the -report document.
const (
	RunReportSchema  = report.Schema
	RunReportVersion = report.Version
)

// Progress, exposition, debug-server and run-report helpers.
var (
	EnableProgress      = progress.Enable
	DisableProgress     = progress.Disable
	ActiveProgress      = progress.Active
	StartProgress       = progress.Start
	NewProgressRenderer = progress.NewRenderer
	WritePrometheus     = export.WritePrometheus
	MetricsDelta        = export.Delta
	ValidateExposition  = export.Validate
	StartDebugServer    = debugserver.Start
	BeginRunReport      = report.Begin
)

// Performance-trajectory observability (internal/telemetry/perf,
// internal/perfsuite): canonical benchmark suites run under a harness that
// records wall time, allocations and runtime/metrics health samples, sealed
// into versioned perf packs (canonical JSON with a SHA-256 self-manifest)
// and compared with a median/MAD drift gate. See README "Benchmarking" and
// DESIGN.md "Perf packs".
type (
	// PerfPack is one sealed perf-pack document (schema
	// "microdata/perf-pack" v1).
	PerfPack = perf.Pack
	// PerfBenchmark is one benchmark's recorded metric series in a pack.
	PerfBenchmark = perf.Benchmark
	// PerfSeries is one metric's samples with median/MAD statistics.
	PerfSeries = perf.Series
	// PerfEnv is the environment fingerprint recorded in every pack.
	PerfEnv = perf.Env
	// PerfSuiteSpec is a named set of benchmarks sharing a dataset.
	PerfSuiteSpec = perf.SuiteSpec
	// PerfOptions tunes a harness run (repetitions, warmup, logging).
	PerfOptions = perf.Options
	// PerfCompareOptions tunes the drift comparator's noise envelope.
	PerfCompareOptions = perf.CompareOptions
	// PerfDiff is the full comparison of two packs.
	PerfDiff = perf.Diff
	// PerfSuiteOptions sets the dataset parameters of the canonical suites.
	PerfSuiteOptions = perfsuite.Options
)

// Stable CLI exit codes shared by anonbench, compare and benchdiff: 0 ok,
// 1 failure, 2 verification failure, 5 regression drift, 6 invalid input.
const (
	ExitOK           = perf.ExitOK
	ExitFailure      = perf.ExitFailure
	ExitVerification = perf.ExitVerification
	ExitDrift        = perf.ExitDrift
	ExitInvalid      = perf.ExitInvalid
)

// Perf-pack constructors and helpers.
var (
	RunPerfSuites    = perf.RunSuites
	ReadPerfPack     = perf.ReadFile
	VerifyPerfPack   = perf.VerifyFile
	ComparePerfPacks = perf.Compare
	CanonicalJSON    = perf.Canonicalize
	ExitCode         = perf.ExitCode
	PerfSuiteNames   = perfsuite.Names
	ResolvePerfSuite = perfsuite.Resolve
)

// TableHash returns the SHA-256 content hash of a table (schema + cells),
// independent of its backing — the dataset fingerprint perf packs record.
func TableHash(t *Table) (string, error) { return t.Hash() }

// Correctness-provenance observability (internal/telemetry/resultpack,
// internal/experiment): experiment *results* — per-algorithm measure
// values, chosen lattice nodes, class-shape statistics, attack-risk
// summaries and E-series report digests — sealed into versioned result
// packs (canonical JSON with a SHA-256 self-manifest and dataset
// fingerprint) that `compare -verify` replays field-by-field. See README
// "Result packs & replay verification" and DESIGN.md "Result packs".
type (
	// ResultPack is one sealed result-pack document (schema
	// "microdata/result-pack" v1).
	ResultPack = resultpack.Pack
	// ResultFloat is a float64 with pinned canonical-JSON spelling for
	// NaN, ±Inf and negative zero.
	ResultFloat = resultpack.Float
	// ResultAlgorithmRow is one (k, algorithm) entry of a pack.
	ResultAlgorithmRow = resultpack.AlgorithmResult
	// ResultAttackRow is one algorithm's attack-risk summary in a pack.
	ResultAttackRow = resultpack.AttackRisk
	// ResultTableDigest pins one experiment's full text report.
	ResultTableDigest = resultpack.TableDigest
	// ResultComparisonRow records one pairwise comparison's verdicts.
	ResultComparisonRow = resultpack.ComparisonResult
	// ResultTableRecorder is the pack sink the experiment runners write
	// report digests into.
	ResultTableRecorder = resultpack.TableRecorder
	// ResultDiffOptions tunes replay diffing (ULP tolerance for floats).
	ResultDiffOptions = resultpack.DiffOptions
	// ResultDivergence is one field-level recorded/replayed mismatch.
	ResultDivergence = resultpack.Divergence
	// ResultCaptureConfig selects what CaptureResultPack records.
	ResultCaptureConfig = experiment.CaptureConfig
	// ResultFileFingerprint pins one input file of a files-source pack.
	ResultFileFingerprint = resultpack.FileFingerprint
)

// ResultPackSchema and ResultPackVersion identify the result-pack document.
const (
	ResultPackSchema  = resultpack.Schema
	ResultPackVersion = resultpack.Version
)

// Result-pack source values: how a pack's inputs were obtained, which
// decides how `compare -verify` replays it.
const (
	ResultPackSourceCensus = resultpack.SourceCensus
	ResultPackSourcePaper  = resultpack.SourcePaper
	ResultPackSourceFiles  = resultpack.SourceFiles
)

// Result-pack constructors and helpers.
var (
	ReadResultPack         = resultpack.ReadFile
	VerifyResultPack       = resultpack.VerifyFile
	DiffResultPacks        = resultpack.Diff
	WriteResultDivergences = resultpack.WriteDivergences
	CaptureResultPack      = experiment.CaptureResults
	ReplayResultPack       = experiment.ReplayPack
)

// WriteResultPack seals p (if needed) and writes it as canonical JSON to
// path ("-" for stdout).
func WriteResultPack(p *ResultPack, path string) error { return p.WriteFile(path) }

// Trajectory-ledger observability (internal/telemetry/ledger): an
// append-only, content-addressed history of sealed perf and result packs
// with per-benchmark time series, rolling changepoint detection and a
// drift/correctness gate that attributes environment changes instead of
// failing on them. Maintained by cmd/anonstat; see README "Trajectory
// ledger" and DESIGN.md "Trajectory ledger".
type (
	// TrajectoryLedger is an opened ledger directory.
	TrajectoryLedger = ledger.Ledger
	// LedgerEntry is one appended pack's index record.
	LedgerEntry = ledger.Entry
	// LedgerEnvelope is the rolling noise band shared by trend and gate.
	LedgerEnvelope = ledger.Envelope
	// LedgerTrend is the extracted per-benchmark time-series document.
	LedgerTrend = ledger.Trend
	// LedgerTrendOptions tunes trend extraction.
	LedgerTrendOptions = ledger.TrendOptions
	// LedgerGateOptions tunes the rolling drift gate.
	LedgerGateOptions = ledger.GateOptions
	// LedgerGateResult is the gate outcome: findings fail, attributions don't.
	LedgerGateResult = ledger.GateResult
	// LedgerFinding is one gate failure with a path-level diagnostic.
	LedgerFinding = ledger.Finding
	// LedgerAttribution is an environment-change note.
	LedgerAttribution = ledger.Attribution
)

// Trajectory-ledger helpers.
var (
	OpenLedger         = ledger.Open
	ExtractLedgerTrend = ledger.ExtractTrend
	GateLedger         = ledger.Gate
	Sparkline          = ledger.Sparkline
	DiffPerfEnv        = perf.DiffEnv
)

// Telemetry constructors and helpers.
var (
	NewTelemetryCollector = telemetry.NewCollector
	SetTelemetryCollector = telemetry.SetCollector
	ActiveTelemetry       = telemetry.Active
	TelemetryEnabled      = telemetry.Enabled
	WithTelemetryClock    = telemetry.WithClock
	StartSpan             = telemetry.Start
	SpanFromContext       = telemetry.SpanFromContext
	SpanDepth             = telemetry.Depth
	SpanMaxDepth          = telemetry.MaxDepth
	SpanSubtreeDurations  = telemetry.SubtreeDurations
	NewMetricsRegistry    = telemetry.NewRegistry
	NewRunMetricsRegistry = telemetry.NewRunRegistry
	SpanString            = telemetry.String
	SpanInt               = telemetry.Int
	SpanInt64             = telemetry.Int64
	SpanFloat             = telemetry.Float
	SpanBool              = telemetry.Bool
	TelemetryLogger       = telemetry.L
	SetLogHandler         = telemetry.SetLogHandler
	NewLogHandler         = telemetry.NewLogHandler
)
